//! An exact decision procedure for **one-round oblivious solvability** of
//! k-set agreement on a closed-above model (extension beyond the paper).
//!
//! The paper sandwiches solvability between algorithmic upper bounds and
//! topological lower bounds. For small models we can do better: decide it
//! outright. A one-round oblivious algorithm (Def 2.5) *is* a map
//! `δ : flat view → value`, and (for inputs ranging over all assignments
//! of a finite value set) validity forces `δ(V) ∈ values(V)` — deciding a
//! value not heard is invalid in some compatible execution. So:
//!
//! > k-set agreement is solvable in one round by an oblivious algorithm
//! > with inputs from `{0..v}` **iff** there is an assignment of a heard
//! > value to every reachable flat view such that every execution (input
//! > assignment × allowed graph) sees at most `k` distinct values.
//!
//! The executions of a closed-above model factor exactly through the
//! per-process superset choices (Lemma 4.8), so the search space is finite
//! and complete. This module enumerates it and decides the CSP with a
//! **pruned search** built from three mutually-reinforcing reductions
//! (DESIGN.md §10):
//!
//! * **Unit propagation** — domains are value bitmasks; each ≤-k-distinct
//!   constraint runs generalized arc consistency to fixpoint (once an
//!   execution has `k` forced values, every other view in it must repeat
//!   one). The paper's hard refutations (the star-union kernels) collapse
//!   at the root under propagation alone.
//! * **Orbit symmetry breaking** — the instance inherits a symmetry group
//!   from the model: process permutations stabilizing the generator set
//!   ([`ksa_graphs::perm::stabilizing_permutations`]) × permutations of
//!   the value set. Partial assignments are keyed by the lex-least image
//!   of their decision set under the group; sibling branches with equal
//!   canonical keys are orbit duplicates and explored once.
//! * **A monotone no-good table** — refuted canonical decision sets are
//!   published to a shared [`NoGoodTable`] (lock-sharded under
//!   `parallel`). Every entry is a fact about the *instance* ("no
//!   solution extends this orbit"), never about one strategy's schedule,
//!   so lookups only skip work and can never flip a verdict: determinism
//!   at any `KSA_THREADS` holds by construction.
//!
//! With the `parallel` feature, strategy variants (value-iteration
//! direction, tie-breaking rule) race on the `ksa-exec` work-stealing
//! pool sharing one table; the first to complete cancels the rest.
//! Verdicts are intrinsic to the instance, hence identical at any thread
//! count (only the synthesized witness map may differ — any witness
//! returned is valid). [`decide_one_round_seq`] keeps the historical
//! forward-checking search, untouched, as the differential-test oracle.
//! The up-front [`RunBudget`] guard makes oversized instances fail fast
//! instead of enumerating unbounded superset spaces.
//!
//! Across `k`, verdicts are **monotone**: a witness for `k` (values
//! `{0..k}`) lifts to a witness for `k+1` (values `{0..k+1}`), and an
//! impossibility at `k` implies impossibility at `k−1`.
//! [`decide_one_round_sweep`] exploits both directions, binary-searching
//! the solvability boundary instead of deciding every `(model, k)` pair
//! from scratch.
//!
//! `Unsolvable` verdicts over the value range `{0, …, k}` imply general
//! unsolvability (an adversary can always restrict inputs), making this an
//! independent, non-topological check of Thm 5.4's impossibilities — see
//! the `solv` experiment.

use crate::budget::{CancelToken, RunBudget};
use crate::error::CoreError;
use crate::task::Value;
#[cfg(feature = "parallel")]
use ksa_exec::prelude::*;
use ksa_graphs::Digraph;
use ksa_models::ClosedAboveModel;
use ksa_models::ObliviousModel;
use ksa_topology::interpretation::FlatView;
use std::collections::{HashMap, HashSet};

/// How many input assignments each parallel batch spans. Batches are
/// enumerated in odometer order and merged in order, so the view/exec
/// numbering is identical to the sequential scan.
#[cfg(feature = "parallel")]
const INPUT_BATCH: usize = 512;

/// Iterator over all input assignments of `n` processes over
/// `{0, …, values − 1}`, in odometer order (process 0 fastest). Shared
/// with [`crate::verify::verify_decision_map`]'s replay.
pub(crate) fn input_assignments(n: usize, values: Value) -> impl Iterator<Item = Vec<Value>> {
    let mut next: Option<Vec<Value>> = Some(vec![0 as Value; n]);
    std::iter::from_fn(move || {
        let current = next.take()?;
        let mut succ = current.clone();
        let mut p = 0;
        loop {
            if p == n {
                break;
            }
            succ[p] += 1;
            if succ[p] < values {
                next = Some(succ);
                break;
            }
            succ[p] = 0;
            p += 1;
        }
        Some(current)
    })
}

/// The views and executions reachable from one input assignment —
/// views are locally numbered; [`EnumerationMerger`] renumbers them
/// globally.
struct LocalEnumeration {
    views: Vec<FlatView<Value>>,
    /// Executions as sorted, deduplicated local view-id sets.
    executions: Vec<Vec<u32>>,
}

/// Accumulates [`LocalEnumeration`]s (in input order) into the global
/// view table and execution set, enforcing `exec_limit`.
struct EnumerationMerger {
    view_ids: HashMap<FlatView<Value>, u32>,
    views: Vec<FlatView<Value>>,
    executions: Vec<Vec<u32>>,
    seen_exec: std::collections::HashSet<Vec<u32>>,
    exec_limit: usize,
}

impl EnumerationMerger {
    fn new(exec_limit: usize) -> Self {
        EnumerationMerger {
            view_ids: HashMap::new(),
            views: Vec::new(),
            executions: Vec::new(),
            seen_exec: std::collections::HashSet::new(),
            exec_limit,
        }
    }

    fn absorb(&mut self, local: LocalEnumeration) -> Result<(), CoreError> {
        let remap: Vec<u32> = local
            .views
            .into_iter()
            .map(|view| {
                let next_id = self.views.len() as u32;
                *self.view_ids.entry(view.clone()).or_insert_with(|| {
                    self.views.push(view);
                    next_id
                })
            })
            .collect();
        for exec in local.executions {
            let mut mapped: Vec<u32> = exec.into_iter().map(|v| remap[v as usize]).collect();
            mapped.sort_unstable();
            mapped.dedup();
            if self.seen_exec.insert(mapped.clone()) {
                self.executions.push(mapped);
                if self.executions.len() > self.exec_limit {
                    return Err(CoreError::Topology(ksa_topology::TopologyError::TooLarge {
                        what: "solvability executions",
                        estimated: self.executions.len() as u128,
                        limit: self.exec_limit as u128,
                    }));
                }
            }
        }
        Ok(())
    }
}

/// Verdict of the decision procedure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Solvability {
    /// A decision map exists; the witness maps each reachable flat view to
    /// its decision.
    Solvable(DecisionMap),
    /// No decision map exists: k-set agreement is not solvable in one
    /// round by any oblivious algorithm, for inputs over the given values.
    Unsolvable,
    /// The node budget was exhausted before the search completed.
    Unknown,
}

impl Solvability {
    /// Whether the verdict is `Solvable`.
    pub fn is_solvable(&self) -> bool {
        matches!(self, Solvability::Solvable(_))
    }
}

/// A witnessing oblivious decision map (flat view → decided value).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DecisionMap {
    entries: Vec<(FlatView<Value>, Value)>,
}

impl DecisionMap {
    /// The decision for a flat view, if the view was reachable in the
    /// analyzed model.
    pub fn decide(&self, view: &FlatView<Value>) -> Option<Value> {
        self.entries
            .binary_search_by(|(v, _)| v.cmp(view))
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// Number of distinct reachable views.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The `(flat view, decision)` entries in canonical sorted order —
    /// the raw material of a [`ksa_cert::SolvabilityCert`]. The map
    /// itself stays sealed; this is a read-only window.
    pub fn entries(&self) -> impl Iterator<Item = &(FlatView<Value>, Value)> {
        self.entries.iter()
    }
}

impl crate::algorithms::ObliviousAlgorithm for DecisionMap {
    fn name(&self) -> &'static str {
        "synthesized-decision-map"
    }

    fn decide(&self, _me: usize, view: &FlatView<Value>) -> Value {
        DecisionMap::decide(self, view).unwrap_or_else(|| {
            // Unreachable views (shouldn't occur on the analyzed model):
            // fall back to the minimum heard value.
            view.iter().map(|&(_, v)| v).min().expect("non-empty view")
        })
    }
}

/// The views and executions reachable from one input assignment of the
/// one-round decider: every generator, every per-process superset choice
/// (the odometer over "free bits" — processes not already heard).
fn one_round_enumerate_input(
    model: &ClosedAboveModel,
    n: usize,
    inputs: &[Value],
) -> LocalEnumeration {
    let mut local_ids: HashMap<FlatView<Value>, u32> = HashMap::new();
    let mut local_seen: std::collections::HashSet<Vec<u32>> = std::collections::HashSet::new();
    let mut local = LocalEnumeration {
        views: Vec::new(),
        executions: Vec::new(),
    };
    for g in model.generators() {
        // Per-process free bits (processes not already heard).
        let bases: Vec<ksa_graphs::ProcSet> = (0..n).map(|p| g.in_set(p)).collect();
        let frees: Vec<Vec<usize>> = bases
            .iter()
            .map(|b| b.complement(n).iter().collect())
            .collect();
        // Odometer over all per-process superset choices.
        let mut choice: Vec<u64> = vec![0; n];
        loop {
            let mut exec: Vec<u32> = Vec::with_capacity(n);
            for p in 0..n {
                let mut senders = bases[p];
                for (bit, &q) in frees[p].iter().enumerate() {
                    if (choice[p] >> bit) & 1 == 1 {
                        senders.insert(q);
                    }
                }
                let view: FlatView<Value> = senders.iter().map(|q| (q, inputs[q])).collect();
                let next_id = local.views.len() as u32;
                let id = *local_ids.entry(view.clone()).or_insert_with(|| {
                    local.views.push(view);
                    next_id
                });
                exec.push(id);
            }
            exec.sort_unstable();
            exec.dedup();
            if local_seen.insert(exec.clone()) {
                local.executions.push(exec);
            }
            // Advance the odometer.
            let mut p = 0;
            loop {
                if p == n {
                    break;
                }
                choice[p] += 1;
                if choice[p] < (1u64 << frees[p].len()) {
                    break;
                }
                choice[p] = 0;
                p += 1;
            }
            if p == n {
                break;
            }
        }
    }
    local
}

/// Merges every input assignment's local enumeration sequentially, in
/// odometer order.
fn merge_all_seq<F>(
    n: usize,
    values: Value,
    exec_limit: usize,
    enumerate: F,
) -> Result<EnumerationMerger, CoreError>
where
    F: Fn(&[Value]) -> LocalEnumeration,
{
    let mut merger = EnumerationMerger::new(exec_limit);
    for inputs in input_assignments(n, values) {
        merger.absorb(enumerate(&inputs))?;
    }
    Ok(merger)
}

/// Merges every input assignment's local enumeration, fanning the
/// assignments out on the work-stealing pool in bounded batches. Local
/// enumerations merge in odometer order, so the view and execution
/// numbering is identical to [`merge_all_seq`].
#[cfg(feature = "parallel")]
fn merge_all<F>(
    n: usize,
    values: Value,
    exec_limit: usize,
    enumerate: F,
) -> Result<EnumerationMerger, CoreError>
where
    F: Fn(&[Value]) -> LocalEnumeration + Sync,
{
    let mut merger = EnumerationMerger::new(exec_limit);
    let mut assignments = input_assignments(n, values);
    loop {
        let batch: Vec<Vec<Value>> = assignments.by_ref().take(INPUT_BATCH).collect();
        if batch.is_empty() {
            break;
        }
        let locals: Vec<LocalEnumeration> =
            batch.par_iter().map(|inputs| enumerate(inputs)).collect();
        for local in locals {
            merger.absorb(local)?;
        }
    }
    Ok(merger)
}

#[cfg(not(feature = "parallel"))]
fn merge_all<F>(
    n: usize,
    values: Value,
    exec_limit: usize,
    enumerate: F,
) -> Result<EnumerationMerger, CoreError>
where
    F: Fn(&[Value]) -> LocalEnumeration + Sync,
{
    merge_all_seq(n, values, exec_limit, enumerate)
}

/// Upper bound on the raw superset-odometer space the one-round decider
/// scans: `values^n` input assignments × `Σ_g 2^{free bits of g}`
/// superset choices. This is what actually bounds the *work* (distinct
/// executions after dedup can be far fewer), so it is what the
/// [`RunBudget`] admits up front.
fn one_round_raw_estimate(model: &ClosedAboveModel, n: usize, values: Value) -> u128 {
    let inputs = (values as u128).checked_pow(n as u32).unwrap_or(u128::MAX);
    let mut per_input: u128 = 0;
    for g in model.generators() {
        let free_bits: u32 = (0..n)
            .map(|p| g.in_set(p).complement(n).iter().count() as u32)
            .sum();
        let supersets = if free_bits >= 127 {
            u128::MAX
        } else {
            1u128 << free_bits
        };
        per_input = per_input.saturating_add(supersets);
    }
    inputs.saturating_mul(per_input)
}

fn validate_k(k: usize) -> Result<(), CoreError> {
    if k == 0 {
        return Err(CoreError::BadParameter {
            name: "k",
            value: 0,
            domain: "[1, n]",
        });
    }
    Ok(())
}

/// Decides one-round oblivious solvability of k-set agreement on `model`
/// with inputs from `{0, …, value_max}`.
///
/// `exec_limit` is the [`RunBudget`] of the search: it bounds both the
/// raw superset space scanned by the enumeration (checked **up front**,
/// so oversized instances fail fast instead of running unbounded) and
/// the number of distinct executions retained. `node_budget` bounds the
/// backtracking nodes per search strategy (exceeding it returns
/// [`Solvability::Unknown`]).
///
/// The CSP runs the pruned search (propagation, orbit symmetry breaking
/// and a no-good table; with `parallel`, racing strategy variants on the
/// work-stealing pool — see the module docs). Decided verdicts
/// (`Solvable`/`Unsolvable`) are intrinsic to the instance and therefore
/// identical to [`decide_one_round_seq`] at any thread count; at the
/// `node_budget` boundary, however, the pruned search may decide an
/// instance the sequential scan gives up on (it returns a verdict where
/// the reference returns [`Solvability::Unknown`] — never a *different*
/// decided verdict).
///
/// # Errors
///
/// [`CoreError::BadParameter`] for `k = 0`; [`CoreError::Budget`] when
/// the superset space exceeds `exec_limit`; [`CoreError::Topology`]
/// (budget) when the distinct-execution count exceeds `exec_limit`.
pub fn decide_one_round(
    model: &ClosedAboveModel,
    k: usize,
    value_max: usize,
    exec_limit: usize,
    node_budget: usize,
) -> Result<Solvability, CoreError> {
    decide_one_round_cancellable(model, k, value_max, exec_limit, node_budget, None)
}

/// [`decide_one_round`] with a cooperative [`CancelToken`]: the racing
/// portfolio polls a *child* of `cancel` at every decision node, so an
/// external cancellation (or deadline) stops all strategies and surfaces
/// as [`CoreError::Cancelled`] / [`CoreError::DeadlineExceeded`] instead
/// of a verdict. A token that never fires is side-effect-free: verdicts
/// stay bit-identical to [`decide_one_round`] at any `KSA_THREADS`.
///
/// # Errors
///
/// Same conditions as [`decide_one_round`], plus the two token variants.
pub fn decide_one_round_cancellable(
    model: &ClosedAboveModel,
    k: usize,
    value_max: usize,
    exec_limit: usize,
    node_budget: usize,
    cancel: Option<&CancelToken>,
) -> Result<Solvability, CoreError> {
    validate_k(k)?;
    if let Some(token) = cancel {
        token.checkpoint()?;
    }
    let n = model.n();
    let values = value_max as Value + 1;
    RunBudget::new(exec_limit as u128).admit(
        "solvability superset enumeration",
        one_round_raw_estimate(model, n, values),
    )?;
    // The executions of one input assignment are independent of every
    // other assignment's, so assignments are the parallel work unit.
    let merger = merge_all(n, values, exec_limit, |inputs: &[Value]| {
        one_round_enumerate_input(model, n, inputs)
    })?;
    let verdict = solve_csp(
        model.generators(),
        values,
        merger.views,
        merger.executions,
        k,
        node_budget,
        cancel,
    )?;
    // A fired token degrades the search to `Unknown` (abandoned
    // subtrees publish nothing); report the interruption instead.
    if let Some(token) = cancel {
        token.checkpoint()?;
    }
    Ok(verdict)
}

/// The sequential reference implementation of [`decide_one_round`]:
/// single-threaded enumeration and the canonical most-constrained-first
/// backtracking search, regardless of the `parallel` feature.
///
/// Exists so tests (and skeptical users) can cross-check that the
/// portfolio search returns the same verdicts; it is also what the
/// `parallel`-less build of [`decide_one_round`] effectively runs.
///
/// # Errors
///
/// Same conditions as [`decide_one_round`].
pub fn decide_one_round_seq(
    model: &ClosedAboveModel,
    k: usize,
    value_max: usize,
    exec_limit: usize,
    node_budget: usize,
) -> Result<Solvability, CoreError> {
    validate_k(k)?;
    let n = model.n();
    let values = value_max as Value + 1;
    RunBudget::new(exec_limit as u128).admit(
        "solvability superset enumeration",
        one_round_raw_estimate(model, n, values),
    )?;
    let merger = merge_all_seq(n, values, exec_limit, |inputs: &[Value]| {
        one_round_enumerate_input(model, n, inputs)
    })?;
    solve_csp_seq(
        CspInstance::new(merger.views, merger.executions, k),
        node_budget,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksa_models::named;

    const EXECS: usize = 2_000_000;
    const NODES: usize = 50_000_000;

    #[test]
    fn kernel_n3_boundary() {
        // Stars s=1, n=3: Thm 5.4 says 2-set impossible; γ_eq = 3 says
        // 3-set solvable. The decision procedure finds exactly that
        // boundary.
        let m = named::star_unions(3, 1).unwrap();
        let s2 = decide_one_round(&m, 2, 2, EXECS, NODES).unwrap();
        assert_eq!(s2, Solvability::Unsolvable);
        let s3 = decide_one_round(&m, 3, 3, EXECS, NODES).unwrap();
        assert!(s3.is_solvable());
    }

    #[test]
    fn ring_n3_boundary() {
        // Sym(C3): γ_eq(C3) = 2 upper; Thm 5.4 l+1 = 1: consensus
        // impossible; 2-set solvable.
        let m = named::symmetric_ring(3).unwrap();
        let s1 = decide_one_round(&m, 1, 1, EXECS, NODES).unwrap();
        assert_eq!(s1, Solvability::Unsolvable);
        let s2 = decide_one_round(&m, 2, 2, EXECS, NODES).unwrap();
        assert!(s2.is_solvable());
    }

    #[test]
    fn stars_n3_s2_solves_2set() {
        // n=3, s=2: upper n−s+1 = 2, lower n−s = 1 impossible.
        let m = named::star_unions(3, 2).unwrap();
        assert_eq!(
            decide_one_round(&m, 1, 1, EXECS, NODES).unwrap(),
            Solvability::Unsolvable
        );
        assert!(decide_one_round(&m, 2, 2, EXECS, NODES)
            .unwrap()
            .is_solvable());
    }

    #[test]
    fn witness_is_a_working_algorithm() {
        use ksa_graphs::closure::enumerate_closure;
        let m = named::star_unions(3, 2).unwrap();
        let Solvability::Solvable(map) = decide_one_round(&m, 2, 2, EXECS, NODES).unwrap() else {
            panic!("solvable");
        };
        assert!(!map.is_empty());
        // Replay the witness over the whole model: never more than 2
        // distinct decisions, always valid.
        let mut graphs = Vec::new();
        for g in m.generators() {
            graphs.extend(enumerate_closure(g, 1 << 10).unwrap());
        }
        graphs.sort();
        graphs.dedup();
        for a in 0..3u32 {
            for b in 0..3u32 {
                for c in 0..3u32 {
                    let inputs = [a, b, c];
                    for g in &graphs {
                        let mut decs: Vec<Value> = Vec::new();
                        for p in 0..3 {
                            let view: Vec<(usize, Value)> =
                                g.in_set(p).iter().map(|q| (q, inputs[q])).collect();
                            let d = map.decide(&view).expect("reachable view");
                            assert!(inputs.contains(&d), "validity");
                            decs.push(d);
                        }
                        decs.sort_unstable();
                        decs.dedup();
                        assert!(decs.len() <= 2, "agreement");
                    }
                }
            }
        }
    }

    #[test]
    fn clique_solves_consensus() {
        let m = ksa_models::ClosedAboveModel::new(vec![ksa_graphs::Digraph::complete(3).unwrap()])
            .unwrap();
        assert!(decide_one_round(&m, 1, 1, EXECS, NODES)
            .unwrap()
            .is_solvable());
    }

    #[test]
    fn simple_ring_matches_thm_5_1() {
        // ↑C3: γ(C3) = 2; 1-set impossible, 2-set solvable — including by
        // the synthesized map.
        let m = named::simple_ring(3).unwrap();
        assert_eq!(
            decide_one_round(&m, 1, 1, EXECS, NODES).unwrap(),
            Solvability::Unsolvable
        );
        assert!(decide_one_round(&m, 2, 2, EXECS, NODES)
            .unwrap()
            .is_solvable());
    }

    #[test]
    fn parameters_validated() {
        let m = named::simple_ring(3).unwrap();
        assert!(decide_one_round(&m, 0, 1, EXECS, NODES).is_err());
        // Tiny execution budget trips the guard.
        assert!(decide_one_round(&m, 2, 2, 1, NODES).is_err());
    }

    #[test]
    fn oversized_instance_fails_fast() {
        // n = 6 star unions: the raw superset odometer is ~2^25 choices
        // per graph × 64 inputs — far past any reasonable exec budget.
        // The up-front RunBudget admit must reject it immediately
        // (previously the enumeration scanned the whole raw space and
        // only the distinct-execution limit could stop it, maybe never).
        let m = named::star_unions(6, 1).unwrap();
        let err = decide_one_round(&m, 2, 1, 100_000, NODES).unwrap_err();
        assert!(matches!(err, crate::CoreError::Budget(_)), "{err:?}");
        // The sequential reference enforces the same guard.
        assert!(decide_one_round_seq(&m, 2, 1, 100_000, NODES).is_err());
    }

    #[test]
    fn portfolio_agrees_with_sequential_reference() {
        // The racing portfolio must return bit-identical verdicts to the
        // sequential most-constrained-first scan on the whole small zoo.
        // One solvable and one unsolvable case from two different model
        // families (the randomized breadth lives in the
        // `solvability_parallel` proptest suite).
        for (model, k) in [
            (named::star_unions(3, 1).unwrap(), 2),
            (named::star_unions(3, 1).unwrap(), 3),
            (named::symmetric_ring(3).unwrap(), 1),
            (named::simple_ring(3).unwrap(), 2),
        ] {
            let par = decide_one_round(&model, k, k, EXECS, NODES).unwrap();
            let seq = decide_one_round_seq(&model, k, k, EXECS, NODES).unwrap();
            assert_eq!(
                std::mem::discriminant(&par),
                std::mem::discriminant(&seq),
                "verdicts diverge at k = {k}"
            );
            // Either witness must cover the same reachable views.
            if let (Solvability::Solvable(a), Solvability::Solvable(b)) = (&par, &seq) {
                assert_eq!(a.len(), b.len());
            }
        }
    }
}

/// Multi-round exact solvability over an **explicit** graph set: the model
/// plays any graph of `graphs` each round; an `r`-round oblivious
/// algorithm decides from the flat view after `r` rounds. Enumerates all
/// `|graphs|^r` schedules (budgeted) — exact for explicit models, and for
/// closed-above models when `graphs` enumerates the closure(s)
/// (small `n`).
///
/// # Errors
///
/// [`CoreError::BadParameter`] for zero `k`/`r`/empty graphs;
/// [`CoreError::Budget`] when the schedule × input space exceeds
/// `exec_limit`; [`CoreError::Topology`] (budget) when the
/// distinct-execution count exceeds it.
pub fn decide_rounds_explicit(
    graphs: &[ksa_graphs::Digraph],
    k: usize,
    value_max: usize,
    rounds: usize,
    exec_limit: usize,
    node_budget: usize,
) -> Result<Solvability, CoreError> {
    if k == 0 || rounds == 0 || graphs.is_empty() {
        return Err(CoreError::BadParameter {
            name: "k/rounds/graphs",
            value: 0,
            domain: "non-zero / non-empty",
        });
    }
    let n = graphs[0].n();
    let values = value_max as Value + 1;
    let schedules = (graphs.len() as u128)
        .checked_pow(rounds as u32)
        .unwrap_or(u128::MAX);
    let inputs_count = (values as u128).checked_pow(n as u32).unwrap_or(u128::MAX);
    RunBudget::new(exec_limit as u128).admit(
        "multi-round solvability executions",
        schedules.saturating_mul(inputs_count),
    )?;

    // Precompute the product graph of every schedule (who heard whom after
    // r rounds), deduplicated — flat views only depend on the product.
    let mut products: Vec<ksa_graphs::Digraph> = Vec::new();
    {
        let mut seen = std::collections::HashSet::new();
        let mut idx = vec![0usize; rounds];
        loop {
            let mut acc = ksa_graphs::Digraph::empty(n)?;
            for &i in &idx {
                acc = ksa_graphs::product::product(&acc, &graphs[i])?;
            }
            if seen.insert(acc.encode()) {
                products.push(acc);
            }
            let mut p = 0;
            loop {
                if p == rounds {
                    break;
                }
                idx[p] += 1;
                if idx[p] < graphs.len() {
                    break;
                }
                idx[p] = 0;
                p += 1;
            }
            if p == rounds {
                break;
            }
        }
    }

    // Views and executions over the deduplicated products; input
    // assignments are the parallel work unit, merged in odometer order
    // (identical numbering to the sequential scan).
    let enumerate_input = |inputs: &[Value]| -> LocalEnumeration {
        let mut local_ids: HashMap<FlatView<Value>, u32> = HashMap::new();
        let mut local = LocalEnumeration {
            views: Vec::new(),
            executions: Vec::new(),
        };
        for g in &products {
            let mut exec: Vec<u32> = Vec::with_capacity(n);
            for p in 0..n {
                let view: FlatView<Value> = g.in_set(p).iter().map(|q| (q, inputs[q])).collect();
                let next_id = local.views.len() as u32;
                let id = *local_ids.entry(view.clone()).or_insert_with(|| {
                    local.views.push(view);
                    next_id
                });
                exec.push(id);
            }
            exec.sort_unstable();
            exec.dedup();
            local.executions.push(exec);
        }
        local
    };

    // The enumeration is within `exec_limit` (checked above), so the
    // merger's limit only needs to catch the distinct-execution
    // overflow, like the sequential scan (which never errored here).
    let merger = merge_all(n, values, exec_limit, enumerate_input)?;
    // The instance's process symmetries are the permutations stabilizing
    // the (deduplicated) set of r-round products — executions are
    // per-product, so any such relabeling maps executions to executions.
    solve_csp(
        &products,
        values,
        merger.views,
        merger.executions,
        k,
        node_budget,
        None,
    )
}

// --- The CSP core ----------------------------------------------------------

/// A preprocessed solvability CSP: one variable per reachable view, its
/// domain the values heard in that view, one ≤-k-distinct constraint per
/// execution. Shared by the sequential and portfolio searches.
struct CspInstance {
    views: Vec<FlatView<Value>>,
    /// Per-view candidate decisions (heard values, sorted ascending).
    candidates: Vec<Vec<Value>>,
    /// For each view, the executions watching it.
    exec_of_view: Vec<Vec<u32>>,
    executions: Vec<Vec<u32>>,
    k: usize,
}

impl CspInstance {
    fn new(views: Vec<FlatView<Value>>, executions: Vec<Vec<u32>>, k: usize) -> Self {
        let candidates: Vec<Vec<Value>> = views
            .iter()
            .map(|v| {
                let mut vals: Vec<Value> = v.iter().map(|&(_, val)| val).collect();
                vals.sort_unstable();
                vals.dedup();
                vals
            })
            .collect();
        let mut exec_of_view: Vec<Vec<u32>> = vec![Vec::new(); views.len()];
        for (ei, e) in executions.iter().enumerate() {
            for &v in e {
                exec_of_view[v as usize].push(ei as u32);
            }
        }
        CspInstance {
            views,
            candidates,
            exec_of_view,
            executions,
            k,
        }
    }

    /// The canonical variable ordering: fewest candidates first
    /// (most-constrained), most-watched first on ties. Identical to the
    /// historical sequential scan.
    fn order_most_constrained(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.views.len()).collect();
        order.sort_by_key(|&v| {
            (
                self.candidates[v].len(),
                std::cmp::Reverse(self.exec_of_view[v].len()),
            )
        });
        order
    }

    /// Initial bitmask domains (bit `v` set ⇔ value `v` is a candidate).
    /// Only valid when every value fits a `u32` mask (`values ≤ 32`),
    /// which the pruned-search entry points guard.
    fn masks(&self) -> Vec<u32> {
        self.candidates
            .iter()
            .map(|vals| vals.iter().fold(0u32, |m, &v| m | (1 << v)))
            .collect()
    }

    /// Packages a complete assignment as the `Solvable` witness.
    fn into_solvable(self, assignment: Vec<Option<Value>>) -> Solvability {
        let mut entries: Vec<(FlatView<Value>, Value)> = self
            .views
            .into_iter()
            .zip(assignment)
            .map(|(v, a)| (v, a.expect("complete assignment")))
            .collect();
        entries.sort();
        Solvability::Solvable(DecisionMap { entries })
    }
}

/// Whether execution `e` can still see ≤ k distinct decisions: the
/// assigned views must not exceed k values already, and once k values
/// are reached every unassigned view of `e` must be able to repeat one.
fn exec_ok(e: &[u32], assignment: &[Option<Value>], candidates: &[Vec<Value>], k: usize) -> bool {
    let mut seen: Vec<Value> = Vec::with_capacity(k + 1);
    let mut unassigned: Vec<u32> = Vec::new();
    for &v in e {
        match assignment[v as usize] {
            Some(val) => {
                if !seen.contains(&val) {
                    seen.push(val);
                }
            }
            None => unassigned.push(v),
        }
    }
    if seen.len() > k {
        return false;
    }
    if seen.len() == k {
        for v in unassigned {
            if !candidates[v as usize].iter().any(|c| seen.contains(c)) {
                return false;
            }
        }
    }
    true
}

/// Whether assigning view `v` (already written into `assignment`) keeps
/// every execution watching `v` satisfiable.
fn view_consistent(csp: &CspInstance, v: usize, assignment: &[Option<Value>]) -> bool {
    csp.exec_of_view[v].iter().all(|&ei| {
        exec_ok(
            &csp.executions[ei as usize],
            assignment,
            &csp.candidates,
            csp.k,
        )
    })
}

/// Decides a solvability CSP with the pruned search (propagation + orbit
/// symmetry breaking + no-good table), racing strategy variants on the
/// pool under `parallel`. `sym_graphs` is the graph set whose stabilizer
/// is the instance's process-symmetry group (the model generators for
/// one round, the deduplicated schedule products for explicit rounds).
/// Falls back to the sequential forward-checking reference when the
/// value range exceeds the bitmask-domain width.
fn solve_csp(
    sym_graphs: &[Digraph],
    values: Value,
    views: Vec<FlatView<Value>>,
    executions: Vec<Vec<u32>>,
    k: usize,
    node_budget: usize,
    cancel: Option<&CancelToken>,
) -> Result<Solvability, CoreError> {
    let instance = CspInstance::new(views, executions, k);
    let _span = ksa_obs::span("core", || "csp_decide").arg("views", instance.views.len() as u64);
    if values > MAX_MASK_VALUES {
        // The sequential fallback has no per-node poll point; honor the
        // token at its boundary so a fired token still short-circuits.
        if let Some(token) = cancel {
            token.checkpoint()?;
        }
        return solve_csp_seq(instance, node_budget);
    }
    let sym = CspSymmetry::detect(sym_graphs, &instance.views, values);
    record_pruned_entry(&instance, &sym);
    let table = NoGoodTable::new();
    #[cfg(feature = "parallel")]
    {
        Ok(solve_csp_pruned_portfolio(
            instance,
            &sym,
            &table,
            node_budget,
            cancel,
        ))
    }
    #[cfg(not(feature = "parallel"))]
    {
        let (outcome, stats) = run_pruned_strategy(
            &instance,
            &sym,
            &table,
            cancel,
            PrunedKnobs::CANONICAL,
            node_budget,
        );
        flush_pruned_perf(&stats);
        Ok(finish_pruned(instance, outcome))
    }
}

/// Deterministic observability for one pruned-search entry: the verdict
/// tick, the symmetry-group order, and the (pre-race, scheduling-free)
/// count of orbit-duplicate branches at the root. Emitted once per
/// decided instance regardless of thread count, so the deterministic
/// counter stream is bit-identical at any `KSA_THREADS`.
fn record_pruned_entry(csp: &CspInstance, sym: &CspSymmetry) {
    ksa_obs::count(ksa_obs::Counter::CspVerdicts, 1);
    ksa_obs::count(ksa_obs::Counter::CspSymmetries, sym.order() as u64);
    let mut doms = csp.masks();
    let root_prunes = if propagate(csp, &mut doms) {
        match pick_var(csp, &doms, false) {
            Some(v) => {
                let mut seen: HashSet<NoGoodKey> = HashSet::new();
                let mut dups = 0u64;
                for val in mask_values(doms[v], false) {
                    if !seen.insert(sym.canonical_signature(&[(v as u32, val)])) {
                        dups += 1;
                    }
                }
                dups
            }
            None => 0,
        }
    } else {
        0
    };
    ksa_obs::count(ksa_obs::Counter::CspOrbitRootPrunes, root_prunes);
}

/// The sequential most-constrained-first backtracking search (the
/// deterministic reference semantics).
fn solve_csp_seq(instance: CspInstance, node_budget: usize) -> Result<Solvability, CoreError> {
    let order = instance.order_most_constrained();

    fn dfs(
        csp: &CspInstance,
        order: &[usize],
        depth: usize,
        assignment: &mut Vec<Option<Value>>,
        nodes: &mut usize,
        budget: usize,
    ) -> Option<bool> {
        if depth == order.len() {
            return Some(true);
        }
        *nodes += 1;
        if *nodes > budget {
            return None;
        }
        let v = order[depth];
        for i in 0..csp.candidates[v].len() {
            let val = csp.candidates[v][i];
            assignment[v] = Some(val);
            if view_consistent(csp, v, assignment) {
                match dfs(csp, order, depth + 1, assignment, nodes, budget) {
                    Some(true) => return Some(true),
                    Some(false) => {}
                    None => {
                        assignment[v] = None;
                        return None;
                    }
                }
            }
            assignment[v] = None;
        }
        Some(false)
    }

    let mut assignment: Vec<Option<Value>> = vec![None; instance.views.len()];
    let mut nodes = 0usize;
    ksa_obs::count(ksa_obs::Counter::CspVerdicts, 1);
    match dfs(
        &instance,
        &order,
        0,
        &mut assignment,
        &mut nodes,
        node_budget,
    ) {
        None => Ok(Solvability::Unknown),
        Some(false) => Ok(Solvability::Unsolvable),
        Some(true) => Ok(instance.into_solvable(assignment)),
    }
}

// --- The pruned search: propagation + orbits + no-goods --------------------

/// Widest value range the bitmask-domain search handles; beyond it the
/// sequential forward-checking reference decides the instance.
const MAX_MASK_VALUES: Value = 32;

/// Largest symmetry-group order worth enumerating per canonical-key
/// computation: past this, canonicalization costs more than the pruning
/// it buys, so detection falls back to a subgroup (or the trivial group).
const SYM_ORDER_CAP: usize = 1024;

/// Canonical signature of a partial decision set: the lex-least image of
/// the sorted `(view, value)` pairs under the instance's symmetry group.
/// Strategy-independent — the no-good table keys entries by it.
pub type NoGoodKey = Box<[(u32, Value)]>;

/// One non-identity symmetry of a CSP instance: a relabeling of view ids
/// together with the value relabeling that induced it.
struct SymElem {
    view_map: Vec<u32>,
    value_map: Vec<Value>,
}

/// The symmetry group of a solvability CSP: process permutations
/// stabilizing the generating graph set × permutations of the value set
/// (inputs range over *all* assignments, so every value relabeling is a
/// symmetry). Soundness of orbit pruning needs a genuine group — closed
/// under inverse and composition — which each fallback below preserves:
/// the full direct product, either factor alone, or the trivial group.
struct CspSymmetry {
    /// Non-identity elements; the identity is implicit.
    elems: Vec<SymElem>,
}

impl CspSymmetry {
    /// Group order (including the identity).
    fn order(&self) -> usize {
        self.elems.len() + 1
    }

    fn trivial() -> CspSymmetry {
        CspSymmetry { elems: Vec::new() }
    }

    /// Detects the instance symmetries. `sym_graphs` generates the
    /// process-permutation factor (its stabilizer in `S_n`); the value
    /// factor is all of `S_values`. Conservative: any anomaly (a view
    /// image outside the reachable set, an over-cap group) degrades to a
    /// smaller subgroup rather than a non-group subset.
    fn detect(sym_graphs: &[Digraph], views: &[FlatView<Value>], values: Value) -> CspSymmetry {
        use ksa_graphs::perm::{all_permutations, stabilizing_permutations, Permutation};
        let Some(first) = sym_graphs.first() else {
            return CspSymmetry::trivial();
        };
        let n = first.n();
        let Ok(proc_perms) = stabilizing_permutations(sym_graphs) else {
            return CspSymmetry::trivial();
        };
        let value_count = values as usize;
        let vperm_order: usize = (1..=value_count).product();
        // The direct product when it fits, else the bigger factor that
        // does, else nothing. Each choice is a subgroup.
        let full = proc_perms.len().saturating_mul(vperm_order);
        let (use_procs, use_values) = if full <= SYM_ORDER_CAP {
            (true, true)
        } else if proc_perms.len() >= vperm_order && proc_perms.len() <= SYM_ORDER_CAP {
            (true, false)
        } else if vperm_order <= SYM_ORDER_CAP {
            (false, true)
        } else if proc_perms.len() <= SYM_ORDER_CAP {
            (true, false)
        } else {
            return CspSymmetry::trivial();
        };
        let proc_perms = if use_procs {
            proc_perms
        } else {
            vec![Permutation::identity(n)]
        };
        let value_maps: Vec<Vec<Value>> = if use_values {
            all_permutations(value_count)
                .map(|p| (0..value_count).map(|v| p.apply(v) as Value).collect())
                .collect()
        } else {
            vec![(0..values).collect()]
        };
        let view_ids: HashMap<&FlatView<Value>, u32> = views
            .iter()
            .enumerate()
            .map(|(i, v)| (v, i as u32))
            .collect();
        let mut elems = Vec::new();
        for pi in &proc_perms {
            let pi_identity = *pi == Permutation::identity(n);
            for vm in &value_maps {
                if pi_identity && vm.iter().enumerate().all(|(i, &v)| v as usize == i) {
                    continue;
                }
                let mut view_map = vec![0u32; views.len()];
                for (i, view) in views.iter().enumerate() {
                    let mut image: FlatView<Value> = view
                        .iter()
                        .map(|&(p, val)| (pi.apply(p), vm[val as usize]))
                        .collect();
                    image.sort_unstable();
                    match view_ids.get(&image) {
                        Some(&id) => view_map[i] = id,
                        None => {
                            // A genuine symmetry maps reachable views to
                            // reachable views; an unmapped image means
                            // `sym_graphs` over-approximates the instance.
                            // Dropping single elements would break the
                            // group property, so drop the whole group.
                            debug_assert!(false, "stabilizer element is not an instance symmetry");
                            return CspSymmetry::trivial();
                        }
                    }
                }
                elems.push(SymElem {
                    view_map,
                    value_map: vm.clone(),
                });
            }
        }
        CspSymmetry { elems }
    }

    /// The lex-least image of `decisions` (as a sorted set) under the
    /// group — equal keys ⇔ orbit-equivalent decision sets.
    fn canonical_signature(&self, decisions: &[(u32, Value)]) -> NoGoodKey {
        let mut best: Vec<(u32, Value)> = decisions.to_vec();
        best.sort_unstable();
        let mut buf: Vec<(u32, Value)> = Vec::with_capacity(decisions.len());
        for e in &self.elems {
            buf.clear();
            buf.extend(
                decisions
                    .iter()
                    .map(|&(v, val)| (e.view_map[v as usize], e.value_map[val as usize])),
            );
            buf.sort_unstable();
            if buf < best {
                std::mem::swap(&mut best, &mut buf);
            }
        }
        best.into_boxed_slice()
    }
}

/// A shared table of refuted canonical decision sets — a **monotone
/// pruning oracle** (see `ksa_exec::ShardedSet` for the contract).
///
/// Entries are published only for subtrees the search *proved* empty
/// (exhausted or propagation-refuted) — never for subtrees abandoned to
/// the node budget or a cancellation — and keyed by strategy-independent
/// canonical signatures. A hit therefore only skips work whose outcome
/// is already decided; verdicts are unaffected by construction, at any
/// thread count and under any seeding. Seeding entries that are not
/// genuine no-goods of the *same* instance is safe exactly when they can
/// never match a probed signature (e.g. out-of-range view ids); seeding
/// a false matching entry would violate the contract.
///
/// Lock-sharded under the `parallel` feature so racing strategies share
/// one table; a plain mutex-guarded set otherwise.
pub struct NoGoodTable {
    #[cfg(feature = "parallel")]
    inner: ksa_exec::ShardedSet<NoGoodKey>,
    #[cfg(not(feature = "parallel"))]
    inner: std::sync::Mutex<HashSet<NoGoodKey>>,
}

impl NoGoodTable {
    /// An empty table.
    pub fn new() -> Self {
        NoGoodTable {
            #[cfg(feature = "parallel")]
            inner: ksa_exec::ShardedSet::new(),
            #[cfg(not(feature = "parallel"))]
            inner: std::sync::Mutex::new(HashSet::new()),
        }
    }

    /// Number of published no-goods.
    pub fn len(&self) -> usize {
        #[cfg(feature = "parallel")]
        {
            self.inner.len()
        }
        #[cfg(not(feature = "parallel"))]
        {
            self.inner.lock().expect("table poisoned").len()
        }
    }

    /// Whether the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Publishes an externally-supplied entry (normalized to sorted
    /// order). Intended for re-seeding a table from [`Self::snapshot`] of
    /// an earlier search of the **same** instance; see the type docs for
    /// what seeding may never do.
    pub fn seed(&self, entry: &[(u32, Value)]) {
        let mut key: Vec<(u32, Value)> = entry.to_vec();
        key.sort_unstable();
        self.insert(key.into_boxed_slice());
    }

    /// All published entries, in unspecified order — for harvesting a
    /// finished search's facts to [`Self::seed`] a later one.
    pub fn snapshot(&self) -> Vec<NoGoodKey> {
        #[cfg(feature = "parallel")]
        {
            self.inner.snapshot()
        }
        #[cfg(not(feature = "parallel"))]
        {
            self.inner
                .lock()
                .expect("table poisoned")
                .iter()
                .cloned()
                .collect()
        }
    }

    fn contains(&self, key: &NoGoodKey) -> bool {
        #[cfg(feature = "parallel")]
        {
            self.inner.contains(key)
        }
        #[cfg(not(feature = "parallel"))]
        {
            self.inner.lock().expect("table poisoned").contains(key)
        }
    }

    fn insert(&self, key: NoGoodKey) -> bool {
        #[cfg(feature = "parallel")]
        {
            self.inner.insert(key)
        }
        #[cfg(not(feature = "parallel"))]
        {
            self.inner.lock().expect("table poisoned").insert(key)
        }
    }
}

impl Default for NoGoodTable {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for NoGoodTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NoGoodTable")
            .field("len", &self.len())
            .finish()
    }
}

/// Work accounting of one pruned-search strategy. `nodes` is the hard
/// determinism anchor of the differential tests: with an empty table and
/// one strategy it is a pure function of the instance; with a seeded or
/// shared table it can only shrink, never grow.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Decision nodes expanded.
    pub nodes: u64,
    /// Branches skipped because their canonical signature was already
    /// published as a no-good.
    pub nogood_hits: u64,
    /// No-goods this strategy published first.
    pub nogood_inserts: u64,
    /// Sibling branches skipped as orbit duplicates of an explored one.
    pub orbit_prunes: u64,
    /// Order of the detected symmetry group (1 = no symmetry used).
    pub symmetry_order: u64,
}

/// Strategy knobs of the pruned search. All variants share the table;
/// verdicts are knob-independent.
#[derive(Debug, Clone, Copy)]
struct PrunedKnobs {
    /// Iterate candidate values high-to-low instead of low-to-high.
    value_reverse: bool,
    /// Break MRV ties by constraint degree (most-watched view first)
    /// instead of lowest view id.
    tie_degree: bool,
}

impl PrunedKnobs {
    /// The canonical (deterministic-reference) variant.
    const CANONICAL: PrunedKnobs = PrunedKnobs {
        value_reverse: false,
        tie_degree: false,
    };
}

/// Outcome of one pruned-search strategy.
enum PrunedOutcome {
    /// All domains singleton — `doms` encodes the witness.
    Solved(Vec<u32>),
    /// The (sub)tree holds no solution.
    Exhausted,
    /// Node budget ran out first.
    OutOfBudget,
    /// Another strategy completed first.
    Cancelled,
}

/// The candidate values of a domain mask in strategy order.
fn mask_values(mask: u32, reverse: bool) -> impl Iterator<Item = Value> {
    let mut vals: Vec<Value> = (0..32).filter(|&b| mask >> b & 1 == 1).collect();
    if reverse {
        vals.reverse();
    }
    vals.into_iter()
}

/// Generalized arc consistency on the ≤-k-distinct constraints, to
/// fixpoint: per execution, the union of singleton domains is the forced
/// value set; more than `k` forced values is a wipeout, exactly `k`
/// restricts every undecided view of the execution to repeat a forced
/// value. Returns `false` on wipeout. Order-independent (the GAC
/// fixpoint is unique), so the propagated state is a function of the
/// decision *set* — which is what makes orbit keys sound.
fn propagate(csp: &CspInstance, doms: &mut [u32]) -> bool {
    loop {
        let mut changed = false;
        for e in &csp.executions {
            let mut forced: u32 = 0;
            let mut forced_count = 0usize;
            for &v in e {
                let d = doms[v as usize];
                if d == 0 {
                    return false;
                }
                if d & (d - 1) == 0 && forced & d == 0 {
                    forced_count += 1;
                    forced |= d;
                }
            }
            if forced_count > csp.k {
                return false;
            }
            if forced_count == csp.k {
                for &v in e {
                    let d = doms[v as usize];
                    if d & (d - 1) != 0 {
                        let nd = d & forced;
                        if nd == 0 {
                            return false;
                        }
                        if nd != d {
                            doms[v as usize] = nd;
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            return true;
        }
    }
}

/// The MRV branch variable: smallest non-singleton domain, ties broken
/// per the strategy (lowest id, or highest constraint degree then lowest
/// id). `None` means every domain is singleton — solved.
fn pick_var(csp: &CspInstance, doms: &[u32], tie_degree: bool) -> Option<usize> {
    let mut best: Option<(u32, usize, usize)> = None;
    for (v, &d) in doms.iter().enumerate() {
        let c = d.count_ones();
        if c < 2 {
            continue;
        }
        let tie = if tie_degree {
            usize::MAX - csp.exec_of_view[v].len()
        } else {
            0
        };
        let key = (c, tie, v);
        if best.is_none_or(|b| key < b) {
            best = Some(key);
        }
    }
    best.map(|(_, _, v)| v)
}

/// Whether a fully-singleton domain vector satisfies every execution —
/// guaranteed by the last successful propagation; kept as a debug check.
fn complete_assignment_ok(csp: &CspInstance, doms: &[u32]) -> bool {
    doms.iter().all(|d| d.count_ones() == 1)
        && csp.executions.iter().all(|e| {
            let mut seen = 0u32;
            for &v in e {
                seen |= doms[v as usize];
            }
            seen.count_ones() as usize <= csp.k
        })
}

/// Per-strategy context of the pruned search.
struct PrunedCtx<'a> {
    csp: &'a CspInstance,
    sym: &'a CspSymmetry,
    table: &'a NoGoodTable,
    cancel: Option<&'a CancelToken>,
    knobs: PrunedKnobs,
    budget: u64,
}

/// Propagating DFS with orbit and no-good pruning. `doms` is the
/// propagated state reached by `decisions`; each candidate branch is
/// keyed by the canonical signature of its extended decision set, probed
/// against sibling orbits and the shared table, and — once *proved*
/// empty (propagation wipeout or exhausted recursion) — published.
/// Subtrees abandoned to the budget or a cancellation are never
/// published, which is the monotonicity half of the table contract.
fn pruned_dfs(
    ctx: &PrunedCtx<'_>,
    doms: &[u32],
    decisions: &mut Vec<(u32, Value)>,
    stats: &mut SearchStats,
) -> PrunedOutcome {
    if let Some(token) = ctx.cancel {
        if token.is_cancelled() {
            return PrunedOutcome::Cancelled;
        }
    }
    let Some(v) = pick_var(ctx.csp, doms, ctx.knobs.tie_degree) else {
        debug_assert!(complete_assignment_ok(ctx.csp, doms));
        return PrunedOutcome::Solved(doms.to_vec());
    };
    stats.nodes += 1;
    if stats.nodes > ctx.budget {
        return PrunedOutcome::OutOfBudget;
    }
    // Every signature in here is a *proved* dead branch (wipeout,
    // exhausted recursion, or an earlier table hit), so any later
    // sibling in the same orbit is dead too.
    let mut dead_sigs: Vec<NoGoodKey> = Vec::new();
    for val in mask_values(doms[v], ctx.knobs.value_reverse) {
        decisions.push((v as u32, val));
        let sig = ctx.sym.canonical_signature(decisions);
        decisions.pop();
        if dead_sigs.contains(&sig) {
            stats.orbit_prunes += 1;
            continue;
        }
        if ctx.table.contains(&sig) {
            stats.nogood_hits += 1;
            dead_sigs.push(sig);
            continue;
        }
        let mut child = doms.to_vec();
        child[v] = 1u32 << val;
        if propagate(ctx.csp, &mut child) {
            decisions.push((v as u32, val));
            let out = pruned_dfs(ctx, &child, decisions, stats);
            decisions.pop();
            match out {
                PrunedOutcome::Exhausted => {
                    if ctx.table.insert(sig.clone()) {
                        stats.nogood_inserts += 1;
                    }
                    dead_sigs.push(sig);
                }
                other => return other,
            }
        } else {
            if ctx.table.insert(sig.clone()) {
                stats.nogood_inserts += 1;
            }
            dead_sigs.push(sig);
        }
    }
    PrunedOutcome::Exhausted
}

/// Runs one strategy of the pruned search from the root.
fn run_pruned_strategy(
    csp: &CspInstance,
    sym: &CspSymmetry,
    table: &NoGoodTable,
    cancel: Option<&CancelToken>,
    knobs: PrunedKnobs,
    node_budget: usize,
) -> (PrunedOutcome, SearchStats) {
    let mut stats = SearchStats {
        symmetry_order: sym.order() as u64,
        ..SearchStats::default()
    };
    let mut doms = csp.masks();
    if !propagate(csp, &mut doms) {
        return (PrunedOutcome::Exhausted, stats);
    }
    let ctx = PrunedCtx {
        csp,
        sym,
        table,
        cancel,
        knobs,
        budget: node_budget as u64,
    };
    let mut decisions = Vec::new();
    let out = pruned_dfs(&ctx, &doms, &mut decisions, &mut stats);
    (out, stats)
}

/// Flushes one strategy's work counters to the perf (scheduling-
/// dependent) observability tier.
fn flush_pruned_perf(stats: &SearchStats) {
    ksa_obs::perf_count(ksa_obs::PerfCounter::PortfolioNodes, stats.nodes);
    ksa_obs::perf_count(ksa_obs::PerfCounter::NoGoodHits, stats.nogood_hits);
    ksa_obs::perf_count(ksa_obs::PerfCounter::NoGoodInserts, stats.nogood_inserts);
}

/// Maps a strategy outcome to the public verdict, synthesizing the
/// witness map from singleton domains.
fn finish_pruned(instance: CspInstance, outcome: PrunedOutcome) -> Solvability {
    match outcome {
        PrunedOutcome::Solved(doms) => {
            let assignment: Vec<Option<Value>> = doms
                .iter()
                .map(|&d| Some(d.trailing_zeros() as Value))
                .collect();
            instance.into_solvable(assignment)
        }
        PrunedOutcome::Exhausted => Solvability::Unsolvable,
        PrunedOutcome::OutOfBudget | PrunedOutcome::Cancelled => Solvability::Unknown,
    }
}

/// Races the strategy variants of the pruned search on the pool, all
/// sharing one no-good table; the first to complete (either verdict)
/// cancels the rest. Spawn order puts the canonical variant last: the
/// scope's worker pops its deque LIFO, so a lone worker runs canonical
/// first and only then the alternates (which immediately observe the
/// cancellation), while idle workers steal the alternates FIFO.
///
/// The race flag is a *child* [`CancelToken`] of the caller's token
/// (when one is supplied): the winner cancels only the child, so
/// siblings stop, while an external cancellation or deadline on the
/// parent reaches every strategy through the same poll — one
/// cancellation idiom for both uses (DESIGN.md §12.2).
///
/// Verdicts are intrinsic to the instance — identical at any thread
/// count. At the node-budget boundary a strategy helped by the shared
/// table may decide an instance the lone canonical variant would give up
/// on; that can only upgrade `Unknown` to a decided verdict, never flip
/// a decided one.
#[cfg(feature = "parallel")]
fn solve_csp_pruned_portfolio(
    instance: CspInstance,
    sym: &CspSymmetry,
    table: &NoGoodTable,
    node_budget: usize,
    external: Option<&CancelToken>,
) -> Solvability {
    use std::sync::Mutex;

    let alternates = [
        PrunedKnobs {
            value_reverse: true,
            tie_degree: false,
        },
        PrunedKnobs {
            value_reverse: false,
            tie_degree: true,
        },
    ];
    let race = match external {
        Some(token) => token.child(),
        None => CancelToken::new(),
    };
    let winner: Mutex<Option<PrunedOutcome>> = Mutex::new(None);
    let csp = &instance;
    let report = |outcome: PrunedOutcome| -> bool {
        let mut slot = winner.lock().expect("winner slot poisoned");
        if slot.is_none() {
            *slot = Some(outcome);
            race.cancel();
            true
        } else {
            false
        }
    };
    ksa_exec::scope(|s| {
        for knobs in alternates {
            let (race, report) = (&race, &report);
            s.spawn(move |_| {
                let (out, stats) =
                    run_pruned_strategy(csp, sym, table, Some(race), knobs, node_budget);
                flush_pruned_perf(&stats);
                if matches!(out, PrunedOutcome::Solved(_) | PrunedOutcome::Exhausted) && report(out)
                {
                    ksa_obs::perf_count(ksa_obs::PerfCounter::PortfolioAlternateWins, 1);
                }
            });
        }
        {
            let (race, report) = (&race, &report);
            s.spawn(move |_| {
                let (out, stats) = run_pruned_strategy(
                    csp,
                    sym,
                    table,
                    Some(race),
                    PrunedKnobs::CANONICAL,
                    node_budget,
                );
                flush_pruned_perf(&stats);
                if matches!(out, PrunedOutcome::Solved(_) | PrunedOutcome::Exhausted) && report(out)
                {
                    ksa_obs::perf_count(ksa_obs::PerfCounter::PortfolioCanonicalWins, 1);
                }
            });
        }
    });
    match winner.into_inner().expect("winner slot poisoned") {
        Some(outcome) => finish_pruned(instance, outcome),
        // No strategy completed: every one was cancelled (external
        // token) or ran out of budget without reporting.
        None => Solvability::Unknown,
    }
}

/// [`decide_one_round`] against a caller-supplied [`NoGoodTable`],
/// running the single canonical strategy — the deterministic surface of
/// the differential tests and the incremental-reuse path.
///
/// With an empty fresh table the returned [`SearchStats`] (in
/// particular `nodes`) are a pure function of the instance; seeding the
/// table with facts harvested from an earlier search of the same
/// instance can only shrink the work counters. Verdicts are identical to
/// [`decide_one_round`] away from the node-budget boundary (the racing
/// variants can only upgrade `Unknown`).
///
/// Instances whose value range exceeds the bitmask width fall back to
/// the sequential reference and report default stats.
///
/// # Errors
///
/// Same conditions as [`decide_one_round`].
pub fn decide_one_round_with_table(
    model: &ClosedAboveModel,
    k: usize,
    value_max: usize,
    exec_limit: usize,
    node_budget: usize,
    table: &NoGoodTable,
) -> Result<(Solvability, SearchStats), CoreError> {
    validate_k(k)?;
    let n = model.n();
    let values = value_max as Value + 1;
    RunBudget::new(exec_limit as u128).admit(
        "solvability superset enumeration",
        one_round_raw_estimate(model, n, values),
    )?;
    let merger = merge_all_seq(n, values, exec_limit, |inputs: &[Value]| {
        one_round_enumerate_input(model, n, inputs)
    })?;
    let instance = CspInstance::new(merger.views, merger.executions, k);
    if values > MAX_MASK_VALUES {
        let verdict = solve_csp_seq(instance, node_budget)?;
        return Ok((verdict, SearchStats::default()));
    }
    let sym = CspSymmetry::detect(model.generators(), &instance.views, values);
    record_pruned_entry(&instance, &sym);
    let (outcome, stats) = run_pruned_strategy(
        &instance,
        &sym,
        table,
        None,
        PrunedKnobs::CANONICAL,
        node_budget,
    );
    flush_pruned_perf(&stats);
    Ok((finish_pruned(instance, outcome), stats))
}

/// [`decide_one_round_with_table`] plus a machine-checkable
/// [`ksa_cert::SolvabilityCert`] for any decided verdict (DESIGN.md
/// §11): `Solvable` carries the full decision map, `Unsolvable` an
/// exhaustion attestation built from the [`SearchStats`]; `Unknown`
/// yields no certificate. The certificate's closure graphs are
/// enumerated independently of the search (the same
/// [`ksa_graphs::closure::enumerate_closure`] surface the replay
/// verifier uses), so the standalone checker replays decisions against
/// a graph set the producer did not hand-pick.
///
/// # Errors
///
/// Same conditions as [`decide_one_round_with_table`], plus graph-layer
/// errors when the closure enumeration overruns `graph_limit`.
#[allow(clippy::too_many_arguments)]
pub fn decide_one_round_with_table_certified(
    model: &ClosedAboveModel,
    k: usize,
    value_max: usize,
    exec_limit: usize,
    node_budget: usize,
    table: &NoGoodTable,
    graph_limit: usize,
    label: &str,
) -> Result<(Solvability, SearchStats, Option<ksa_cert::SolvabilityCert>), CoreError> {
    let (verdict, stats) =
        decide_one_round_with_table(model, k, value_max, exec_limit, node_budget, table)?;
    let cert_verdict = match &verdict {
        Solvability::Solvable(map) => Some(ksa_cert::SolvVerdict::Map(
            map.entries()
                .map(|(view, d)| (view.iter().map(|&(p, v)| (p as u32, v)).collect(), *d))
                .collect(),
        )),
        // A search that terminates examines at least the root, and the
        // fallback paths that report default stats still did so: clamp
        // the attestation to the checker's "did any work" floor. The
        // trivial symmetry group has order 1, never 0.
        Solvability::Unsolvable => Some(ksa_cert::SolvVerdict::Exhausted {
            nodes: stats.nodes.max(1),
            symmetry_order: stats.symmetry_order.max(1),
        }),
        Solvability::Unknown => None,
    };
    let Some(cv) = cert_verdict else {
        return Ok((verdict, stats, None));
    };
    let n = model.n();
    let mut graphs = Vec::new();
    for g in model.generators() {
        graphs.extend(ksa_graphs::closure::enumerate_closure(g, graph_limit)?);
    }
    graphs.sort();
    graphs.dedup();
    let graph_sets: Vec<Vec<Vec<u32>>> = graphs
        .iter()
        .map(|g| {
            (0..n)
                .map(|p| {
                    let mut in_set: Vec<u32> = g.in_set(p).iter().map(|q| q as u32).collect();
                    in_set.sort_unstable();
                    in_set
                })
                .collect()
        })
        .collect();
    ksa_obs::count(ksa_obs::Counter::CertsEmitted, 1);
    let cert = ksa_cert::SolvabilityCert {
        label: label.to_string(),
        n: n as u32,
        k: k as u32,
        value_max: value_max as u32,
        graphs: graph_sets,
        verdict: cv,
    };
    Ok((verdict, stats, Some(cert)))
}

// --- Incremental k-sweeps --------------------------------------------------

/// Result of [`decide_one_round_sweep`]: the verdict for every
/// `k ∈ {1, …, k_max}` plus an accounting of how much of the vector was
/// decided monotonically instead of searched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KSweep {
    /// `verdicts[k − 1]` is the verdict for `k`-set agreement with
    /// inputs over `{0, …, k}`. Seeded entries carry genuine (lifted)
    /// witness maps.
    pub verdicts: Vec<Solvability>,
    /// Instances decided by full search.
    pub searched: usize,
    /// Solvable verdicts filled by lifting a smaller-k witness.
    pub seeded: usize,
    /// Unsolvable verdicts filled by downward monotonicity.
    pub pruned: usize,
}

/// Decides one-round solvability for every `k ∈ {1, …, k_max}` (with the
/// per-k value range `{0, …, k}`, matching the `solv` experiment's
/// convention) by **binary-searching the solvability boundary** instead
/// of deciding each `k` from scratch:
///
/// * a `Solvable` verdict at `k` seeds every `k' > k` by lifting the
///   witness (cap inputs at `k`; views deciding the capped class decide
///   their smallest heard value `≥ k` — at most one value splits in two,
///   so `≤ k + 1` distinct decisions);
/// * an `Unsolvable` verdict at `k` prunes every `k' < k` (an adversary
///   restricting inputs to `{0, …, k'}` inherits the impossibility).
///
/// The sweep vector is identical to deciding every `k` from scratch —
/// monotonicity is a theorem, not a heuristic — which
/// `solvability_sweep` pins differentially. An `Unknown` (node-budget)
/// verdict stops the monotone reasoning and the remaining entries are
/// searched individually.
///
/// # Errors
///
/// [`CoreError::BadParameter`] for `k_max = 0`; otherwise the same
/// budget conditions as [`decide_one_round`], for any searched or
/// lifted instance.
pub fn decide_one_round_sweep(
    model: &ClosedAboveModel,
    k_max: usize,
    exec_limit: usize,
    node_budget: usize,
) -> Result<KSweep, CoreError> {
    sweep_impl(model, k_max, exec_limit, node_budget, None, &mut |_| {})
}

/// Progress of a k-sweep, reported after each instance decided by full
/// search (monotone fills are instantaneous and ride along in
/// `decided`). This is what the analysis server streams to clients.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepProgress {
    /// The `k` the search just decided.
    pub k: usize,
    /// Sweep entries filled so far (searched + seeded + pruned).
    pub decided: usize,
    /// Total entries (`k_max`).
    pub total: usize,
}

/// [`decide_one_round_sweep`] with a cooperative [`CancelToken`] and a
/// progress callback: the token is polled between instances *and*
/// threaded into every search's portfolio (per-node granularity), so a
/// deadline fires mid-search, not just between searches. A token that
/// never fires leaves the sweep bit-identical to
/// [`decide_one_round_sweep`] at any `KSA_THREADS`.
///
/// # Errors
///
/// Same conditions as [`decide_one_round_sweep`], plus
/// [`CoreError::Cancelled`] / [`CoreError::DeadlineExceeded`].
pub fn decide_one_round_sweep_cancellable(
    model: &ClosedAboveModel,
    k_max: usize,
    exec_limit: usize,
    node_budget: usize,
    cancel: &CancelToken,
    progress: &mut dyn FnMut(SweepProgress),
) -> Result<KSweep, CoreError> {
    sweep_impl(
        model,
        k_max,
        exec_limit,
        node_budget,
        Some(cancel),
        progress,
    )
}

fn sweep_impl(
    model: &ClosedAboveModel,
    k_max: usize,
    exec_limit: usize,
    node_budget: usize,
    cancel: Option<&CancelToken>,
    progress: &mut dyn FnMut(SweepProgress),
) -> Result<KSweep, CoreError> {
    validate_k(k_max)?;
    let mut verdicts: Vec<Option<Solvability>> = vec![None; k_max];
    let (mut searched, mut seeded, mut pruned) = (0usize, 0usize, 0usize);
    let (mut lo, mut hi) = (1usize, k_max);
    while lo <= hi {
        let mid = lo + (hi - lo) / 2;
        searched += 1;
        match decide_one_round_cancellable(model, mid, mid, exec_limit, node_budget, cancel)? {
            Solvability::Solvable(witness) => {
                verdicts[mid - 1] = Some(Solvability::Solvable(witness.clone()));
                let mut lifted = witness;
                for k in mid + 1..=k_max {
                    if verdicts[k - 1].is_some() {
                        break;
                    }
                    lifted = lift_decision_map(model, k - 1, &lifted, exec_limit)?;
                    verdicts[k - 1] = Some(Solvability::Solvable(lifted.clone()));
                    seeded += 1;
                }
                hi = mid - 1;
            }
            Solvability::Unsolvable => {
                verdicts[mid - 1] = Some(Solvability::Unsolvable);
                for k in 1..mid {
                    if verdicts[k - 1].is_none() {
                        verdicts[k - 1] = Some(Solvability::Unsolvable);
                        pruned += 1;
                    }
                }
                lo = mid + 1;
            }
            Solvability::Unknown => {
                verdicts[mid - 1] = Some(Solvability::Unknown);
                report_sweep_progress(progress, mid, &verdicts);
                break;
            }
        }
        report_sweep_progress(progress, mid, &verdicts);
    }
    // Only reachable after an `Unknown`: no monotone fact covers the
    // remaining entries, so decide them individually.
    for k in 1..=k_max {
        if verdicts[k - 1].is_none() {
            searched += 1;
            verdicts[k - 1] = Some(decide_one_round_cancellable(
                model,
                k,
                k,
                exec_limit,
                node_budget,
                cancel,
            )?);
            report_sweep_progress(progress, k, &verdicts);
        }
    }
    ksa_obs::count(ksa_obs::Counter::CspSweepSeeded, seeded as u64);
    ksa_obs::count(ksa_obs::Counter::CspSweepPruned, pruned as u64);
    Ok(KSweep {
        verdicts: verdicts
            .into_iter()
            .map(|v| v.expect("every k decided"))
            .collect(),
        searched,
        seeded,
        pruned,
    })
}

fn report_sweep_progress(
    progress: &mut dyn FnMut(SweepProgress),
    k: usize,
    verdicts: &[Option<Solvability>],
) {
    progress(SweepProgress {
        k,
        decided: verdicts.iter().filter(|v| v.is_some()).count(),
        total: verdicts.len(),
    });
}

/// Lifts a witness for `k_from`-set agreement (inputs `{0, …, k_from}`)
/// to one for `k_from + 1` (inputs `{0, …, k_from + 1}`).
///
/// Construction: cap every heard value at `cap = k_from`; the capped
/// view is reachable in the smaller instance, so the witness decides it.
/// A decision `< cap` is heard uncapped and is kept; a decision `= cap`
/// becomes the smallest heard value `≥ cap` (one exists — some process
/// in the view capped to `cap`). Per execution the `< cap` decisions are
/// a subset of the capped execution's (≤ `k_from`, and ≤ `k_from − 1`
/// when any view decided `cap` there), and the `≥ cap` decisions take at
/// most two values — ≤ `k_from + 1` distinct in all.
fn lift_decision_map(
    model: &ClosedAboveModel,
    k_from: usize,
    map: &DecisionMap,
    exec_limit: usize,
) -> Result<DecisionMap, CoreError> {
    let n = model.n();
    let cap = k_from as Value;
    let values_to = cap + 2;
    RunBudget::new(exec_limit as u128).admit(
        "solvability sweep lift enumeration",
        one_round_raw_estimate(model, n, values_to),
    )?;
    let merger = merge_all_seq(n, values_to, exec_limit, |inputs: &[Value]| {
        one_round_enumerate_input(model, n, inputs)
    })?;
    let mut entries: Vec<(FlatView<Value>, Value)> = Vec::with_capacity(merger.views.len());
    for view in merger.views {
        let capped: FlatView<Value> = view.iter().map(|&(p, v)| (p, v.min(cap))).collect();
        let decided = map
            .decide(&capped)
            .expect("capped view is reachable in the k_from instance");
        let lifted = if decided < cap {
            decided
        } else {
            view.iter()
                .map(|&(_, v)| v)
                .filter(|&v| v >= cap)
                .min()
                .expect("a capped-to-cap process heard a value >= cap")
        };
        entries.push((view, lifted));
    }
    entries.sort();
    Ok(DecisionMap { entries })
}

#[cfg(test)]
mod pruned_tests {
    use super::*;
    use ksa_models::named;

    const EXECS: usize = 2_000_000;
    const NODES: usize = 50_000_000;

    #[test]
    fn star_kernel_symmetry_group_order() {
        // stars{n=3, s=1}: 6 process permutations stabilize the generator
        // set, × 3! value permutations at values = 3.
        let m = named::star_unions(3, 1).unwrap();
        let values: Value = 3;
        let merger = merge_all_seq(3, values, EXECS, |inputs: &[Value]| {
            one_round_enumerate_input(&m, 3, inputs)
        })
        .unwrap();
        let sym = CspSymmetry::detect(m.generators(), &merger.views, values);
        assert_eq!(sym.order(), 36);
    }

    #[test]
    fn canonical_signature_is_orbit_invariant_under_elements() {
        let m = named::star_unions(3, 1).unwrap();
        let values: Value = 3;
        let merger = merge_all_seq(3, values, EXECS, |inputs: &[Value]| {
            one_round_enumerate_input(&m, 3, inputs)
        })
        .unwrap();
        let sym = CspSymmetry::detect(m.generators(), &merger.views, values);
        // Mapping a decision set through any group element must not
        // change its canonical signature.
        let decisions = [(0u32, 0 as Value), (5u32, 2 as Value)];
        let base = sym.canonical_signature(&decisions);
        for e in &sym.elems {
            let mapped: Vec<(u32, Value)> = decisions
                .iter()
                .map(|&(v, val)| (e.view_map[v as usize], e.value_map[val as usize]))
                .collect();
            assert_eq!(sym.canonical_signature(&mapped), base);
        }
    }

    #[test]
    fn star_kernel_refutes_at_the_root() {
        // The historical `solv` wall: stars{n=3, s=1} at k = 2 took tens
        // of millions of backtracking nodes. Propagation alone must now
        // refute it at the root (zero or one decision nodes).
        let m = named::star_unions(3, 1).unwrap();
        let table = NoGoodTable::new();
        let (verdict, stats) = decide_one_round_with_table(&m, 2, 2, EXECS, NODES, &table).unwrap();
        assert_eq!(verdict, Solvability::Unsolvable);
        assert!(stats.nodes <= 1, "nodes = {}", stats.nodes);
    }

    #[test]
    fn table_reuse_only_shrinks_work() {
        let m = named::symmetric_ring(3).unwrap();
        let table = NoGoodTable::new();
        let (v1, s1) = decide_one_round_with_table(&m, 1, 1, EXECS, NODES, &table).unwrap();
        let published = table.len();
        let (v2, s2) = decide_one_round_with_table(&m, 1, 1, EXECS, NODES, &table).unwrap();
        assert_eq!(v1, v2);
        assert!(s2.nodes <= s1.nodes);
        assert!(s2.nogood_inserts == 0, "everything already published");
        assert!(table.len() == published);
    }

    #[test]
    fn certified_decide_emits_checkable_certs() {
        let m = named::star_unions(3, 1).unwrap();
        // k = 3 is solvable: the certificate carries the decision map
        // and the standalone checker replays every execution.
        let table = NoGoodTable::new();
        let (verdict, _, cert) =
            decide_one_round_with_table_certified(&m, 3, 3, EXECS, NODES, &table, EXECS, "s31 k=3")
                .unwrap();
        assert!(verdict.is_solvable());
        let cert = cert.expect("decided verdicts carry a certificate");
        ksa_cert::check_solvability(&cert).unwrap();
        let text = ksa_cert::Cert::Solvability(cert).to_text();
        ksa_cert::Cert::parse(&text).unwrap().check().unwrap();

        // k = 2 is unsolvable: the certificate is an exhaustion
        // attestation with sane statistics.
        let table = NoGoodTable::new();
        let (verdict, _, cert) =
            decide_one_round_with_table_certified(&m, 2, 2, EXECS, NODES, &table, EXECS, "s31 k=2")
                .unwrap();
        assert_eq!(verdict, Solvability::Unsolvable);
        let cert = cert.expect("decided verdicts carry a certificate");
        assert!(matches!(
            cert.verdict,
            ksa_cert::SolvVerdict::Exhausted { .. }
        ));
        ksa_cert::check_solvability(&cert).unwrap();

        // The certified wrapper must not perturb the plain verdict.
        let table = NoGoodTable::new();
        let (plain, _) = decide_one_round_with_table(&m, 3, 3, EXECS, NODES, &table).unwrap();
        let table = NoGoodTable::new();
        let (wrapped, _, _) =
            decide_one_round_with_table_certified(&m, 3, 3, EXECS, NODES, &table, EXECS, "x")
                .unwrap();
        assert_eq!(plain, wrapped);
    }

    #[test]
    fn sweep_matches_scratch_on_the_kernel() {
        let m = named::star_unions(3, 1).unwrap();
        let sweep = decide_one_round_sweep(&m, 3, EXECS, NODES).unwrap();
        assert_eq!(sweep.verdicts.len(), 3);
        assert_eq!(sweep.verdicts[0], Solvability::Unsolvable);
        assert_eq!(sweep.verdicts[1], Solvability::Unsolvable);
        assert!(sweep.verdicts[2].is_solvable());
        // The boundary search needs ≤ 2 probes for k_max = 3; the rest
        // comes from monotone facts.
        assert!(sweep.searched <= 2, "searched = {}", sweep.searched);
        assert_eq!(sweep.searched + sweep.seeded + sweep.pruned, 3);
        for (i, v) in sweep.verdicts.iter().enumerate() {
            let scratch = decide_one_round(&m, i + 1, i + 1, EXECS, NODES).unwrap();
            assert_eq!(
                std::mem::discriminant(v),
                std::mem::discriminant(&scratch),
                "k = {}",
                i + 1
            );
        }
    }

    #[test]
    fn sweep_lifted_witnesses_are_complete_maps() {
        let m = named::simple_ring(3).unwrap();
        let sweep = decide_one_round_sweep(&m, 3, EXECS, NODES).unwrap();
        for (i, v) in sweep.verdicts.iter().enumerate() {
            if let Solvability::Solvable(map) = v {
                let scratch = decide_one_round(&m, i + 1, i + 1, EXECS, NODES).unwrap();
                let Solvability::Solvable(scratch_map) = scratch else {
                    panic!("sweep says solvable at k = {}", i + 1);
                };
                // Same reachable-view set, whatever the decisions.
                assert_eq!(map.len(), scratch_map.len(), "k = {}", i + 1);
            }
        }
    }

    #[test]
    fn sweep_rejects_zero_k_max() {
        let m = named::simple_ring(3).unwrap();
        assert!(decide_one_round_sweep(&m, 0, EXECS, NODES).is_err());
    }
}

#[cfg(test)]
mod multi_round_tests {
    use super::*;
    use ksa_graphs::closure::enumerate_closure;
    use ksa_graphs::families;
    use ksa_models::named;

    const EXECS: usize = 5_000_000;
    const NODES: usize = 50_000_000;

    fn closure_of(model: &ksa_models::ClosedAboveModel) -> Vec<ksa_graphs::Digraph> {
        let mut graphs = Vec::new();
        for g in model.generators() {
            graphs.extend(enumerate_closure(g, 1 << 12).unwrap());
        }
        graphs.sort();
        graphs.dedup();
        graphs
    }

    #[test]
    fn simple_ring_two_rounds_consensus() {
        // γ(C3²) = γ(K3) = 1: consensus solvable in two rounds on ↑C3
        // (Thm 6.3); and still impossible in one (Thm 5.1).
        let m = named::simple_ring(3).unwrap();
        let graphs = closure_of(&m);
        let one = decide_rounds_explicit(&graphs, 1, 1, 1, EXECS, NODES).unwrap();
        assert_eq!(one, Solvability::Unsolvable);
        let two = decide_rounds_explicit(&graphs, 1, 1, 2, EXECS, NODES).unwrap();
        assert!(two.is_solvable());
    }

    #[test]
    fn one_round_agrees_with_dedicated_decider() {
        // The explicit-path decider must agree with the factorized
        // one-round decider.
        let m = named::star_unions(3, 2).unwrap();
        let graphs = closure_of(&m);
        let explicit = decide_rounds_explicit(&graphs, 2, 2, 1, EXECS, NODES).unwrap();
        let direct = decide_one_round(&m, 2, 2, EXECS, NODES).unwrap();
        assert_eq!(explicit.is_solvable(), direct.is_solvable());
        assert!(explicit.is_solvable());
        let explicit1 = decide_rounds_explicit(&graphs, 1, 1, 1, EXECS, NODES).unwrap();
        let direct1 = decide_one_round(&m, 1, 1, EXECS, NODES).unwrap();
        assert_eq!(explicit1, Solvability::Unsolvable);
        assert_eq!(direct1, Solvability::Unsolvable);
    }

    #[test]
    fn kernel_stays_hard_with_more_rounds() {
        // Star unions: (n−s)-set agreement impossible at any round count
        // (Thm 6.13) — machine-checked at r = 2 for n = 3, s = 1.
        let m = named::star_unions(3, 1).unwrap();
        let graphs = closure_of(&m);
        let r2 = decide_rounds_explicit(&graphs, 2, 2, 2, EXECS, NODES).unwrap();
        assert_eq!(r2, Solvability::Unsolvable);
    }

    #[test]
    fn loops_only_never_agrees() {
        // The one-graph model with loops only: every process is isolated;
        // k < n impossible at any r, k = n trivially solvable.
        let g = families::clique(1).unwrap();
        let _ = g;
        let lonely = vec![ksa_graphs::Digraph::empty(3).unwrap()];
        for r in 1..=2 {
            assert_eq!(
                decide_rounds_explicit(&lonely, 2, 2, r, EXECS, NODES).unwrap(),
                Solvability::Unsolvable,
                "r = {r}"
            );
            assert!(decide_rounds_explicit(&lonely, 3, 3, r, EXECS, NODES)
                .unwrap()
                .is_solvable());
        }
    }

    #[test]
    fn budgets_and_parameters() {
        let g = vec![ksa_graphs::Digraph::complete(3).unwrap()];
        assert!(decide_rounds_explicit(&g, 0, 1, 1, EXECS, NODES).is_err());
        assert!(decide_rounds_explicit(&g, 1, 1, 0, EXECS, NODES).is_err());
        assert!(decide_rounds_explicit(&[], 1, 1, 1, EXECS, NODES).is_err());
        assert!(decide_rounds_explicit(&g, 1, 3, 1, 2, NODES).is_err());
    }
}
