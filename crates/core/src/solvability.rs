//! An exact decision procedure for **one-round oblivious solvability** of
//! k-set agreement on a closed-above model (extension beyond the paper).
//!
//! The paper sandwiches solvability between algorithmic upper bounds and
//! topological lower bounds. For small models we can do better: decide it
//! outright. A one-round oblivious algorithm (Def 2.5) *is* a map
//! `δ : flat view → value`, and (for inputs ranging over all assignments
//! of a finite value set) validity forces `δ(V) ∈ values(V)` — deciding a
//! value not heard is invalid in some compatible execution. So:
//!
//! > k-set agreement is solvable in one round by an oblivious algorithm
//! > with inputs from `{0..v}` **iff** there is an assignment of a heard
//! > value to every reachable flat view such that every execution (input
//! > assignment × allowed graph) sees at most `k` distinct values.
//!
//! The executions of a closed-above model factor exactly through the
//! per-process superset choices (Lemma 4.8), so the search space is finite
//! and complete. This module enumerates it and runs a
//! most-constrained-first backtracking search with forward checking.
//!
//! `Unsolvable` verdicts over the value range `{0, …, k}` imply general
//! unsolvability (an adversary can always restrict inputs), making this an
//! independent, non-topological check of Thm 5.4's impossibilities — see
//! the `solv` experiment.

use crate::error::CoreError;
use crate::task::Value;
use ksa_models::ClosedAboveModel;
use ksa_models::ObliviousModel;
use ksa_topology::interpretation::FlatView;
#[cfg(feature = "parallel")]
use rayon::prelude::*;
use std::collections::HashMap;

/// How many input assignments each parallel batch spans. Batches are
/// enumerated in odometer order and merged in order, so the view/exec
/// numbering is identical to the sequential scan.
#[cfg(feature = "parallel")]
const INPUT_BATCH: usize = 512;

/// Iterator over all input assignments of `n` processes over
/// `{0, …, values − 1}`, in odometer order (process 0 fastest).
fn input_assignments(n: usize, values: Value) -> impl Iterator<Item = Vec<Value>> {
    let mut next: Option<Vec<Value>> = Some(vec![0 as Value; n]);
    std::iter::from_fn(move || {
        let current = next.take()?;
        let mut succ = current.clone();
        let mut p = 0;
        loop {
            if p == n {
                break;
            }
            succ[p] += 1;
            if succ[p] < values {
                next = Some(succ);
                break;
            }
            succ[p] = 0;
            p += 1;
        }
        Some(current)
    })
}

/// The views and executions reachable from one input assignment —
/// views are locally numbered; [`EnumerationMerger`] renumbers them
/// globally.
struct LocalEnumeration {
    views: Vec<FlatView<Value>>,
    /// Executions as sorted, deduplicated local view-id sets.
    executions: Vec<Vec<u32>>,
}

/// Accumulates [`LocalEnumeration`]s (in input order) into the global
/// view table and execution set, enforcing `exec_limit`.
struct EnumerationMerger {
    view_ids: HashMap<FlatView<Value>, u32>,
    views: Vec<FlatView<Value>>,
    executions: Vec<Vec<u32>>,
    seen_exec: std::collections::HashSet<Vec<u32>>,
    exec_limit: usize,
}

impl EnumerationMerger {
    fn new(exec_limit: usize) -> Self {
        EnumerationMerger {
            view_ids: HashMap::new(),
            views: Vec::new(),
            executions: Vec::new(),
            seen_exec: std::collections::HashSet::new(),
            exec_limit,
        }
    }

    fn absorb(&mut self, local: LocalEnumeration) -> Result<(), CoreError> {
        let remap: Vec<u32> = local
            .views
            .into_iter()
            .map(|view| {
                let next_id = self.views.len() as u32;
                *self.view_ids.entry(view.clone()).or_insert_with(|| {
                    self.views.push(view);
                    next_id
                })
            })
            .collect();
        for exec in local.executions {
            let mut mapped: Vec<u32> = exec.into_iter().map(|v| remap[v as usize]).collect();
            mapped.sort_unstable();
            mapped.dedup();
            if self.seen_exec.insert(mapped.clone()) {
                self.executions.push(mapped);
                if self.executions.len() > self.exec_limit {
                    return Err(CoreError::Topology(ksa_topology::TopologyError::TooLarge {
                        what: "solvability executions",
                        estimated: self.executions.len() as u128,
                        limit: self.exec_limit as u128,
                    }));
                }
            }
        }
        Ok(())
    }
}

/// Verdict of the decision procedure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Solvability {
    /// A decision map exists; the witness maps each reachable flat view to
    /// its decision.
    Solvable(DecisionMap),
    /// No decision map exists: k-set agreement is not solvable in one
    /// round by any oblivious algorithm, for inputs over the given values.
    Unsolvable,
    /// The node budget was exhausted before the search completed.
    Unknown,
}

impl Solvability {
    /// Whether the verdict is `Solvable`.
    pub fn is_solvable(&self) -> bool {
        matches!(self, Solvability::Solvable(_))
    }
}

/// A witnessing oblivious decision map (flat view → decided value).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DecisionMap {
    entries: Vec<(FlatView<Value>, Value)>,
}

impl DecisionMap {
    /// The decision for a flat view, if the view was reachable in the
    /// analyzed model.
    pub fn decide(&self, view: &FlatView<Value>) -> Option<Value> {
        self.entries
            .binary_search_by(|(v, _)| v.cmp(view))
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// Number of distinct reachable views.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl crate::algorithms::ObliviousAlgorithm for DecisionMap {
    fn name(&self) -> &'static str {
        "synthesized-decision-map"
    }

    fn decide(&self, _me: usize, view: &FlatView<Value>) -> Value {
        DecisionMap::decide(self, view).unwrap_or_else(|| {
            // Unreachable views (shouldn't occur on the analyzed model):
            // fall back to the minimum heard value.
            view.iter().map(|&(_, v)| v).min().expect("non-empty view")
        })
    }
}

/// Decides one-round oblivious solvability of k-set agreement on `model`
/// with inputs from `{0, …, value_max}`.
///
/// `exec_limit` bounds the number of enumerated executions and
/// `node_budget` the backtracking nodes (exceeding the latter returns
/// [`Solvability::Unknown`]).
///
/// # Errors
///
/// [`CoreError::BadParameter`] for `k = 0`; [`CoreError::Topology`]
/// (budget) when the execution enumeration exceeds `exec_limit`.
pub fn decide_one_round(
    model: &ClosedAboveModel,
    k: usize,
    value_max: usize,
    exec_limit: usize,
    node_budget: usize,
) -> Result<Solvability, CoreError> {
    if k == 0 {
        return Err(CoreError::BadParameter {
            name: "k",
            value: 0,
            domain: "[1, n]",
        });
    }
    let n = model.n();
    let values = value_max as Value + 1;

    // --- Enumerate reachable views and executions --------------------------
    // The executions of one input assignment are independent of every
    // other assignment's, so assignments are the parallel work unit;
    // local enumerations merge in odometer order, making the view and
    // execution numbering identical to the sequential scan.
    let enumerate_input = |inputs: &[Value]| -> LocalEnumeration {
        let mut local_ids: HashMap<FlatView<Value>, u32> = HashMap::new();
        let mut local_seen: std::collections::HashSet<Vec<u32>> = std::collections::HashSet::new();
        let mut local = LocalEnumeration {
            views: Vec::new(),
            executions: Vec::new(),
        };
        for g in model.generators() {
            // Per-process free bits (processes not already heard).
            let bases: Vec<ksa_graphs::ProcSet> = (0..n).map(|p| g.in_set(p)).collect();
            let frees: Vec<Vec<usize>> = bases
                .iter()
                .map(|b| b.complement(n).iter().collect())
                .collect();
            // Odometer over all per-process superset choices.
            let mut choice: Vec<u64> = vec![0; n];
            loop {
                let mut exec: Vec<u32> = Vec::with_capacity(n);
                for p in 0..n {
                    let mut senders = bases[p];
                    for (bit, &q) in frees[p].iter().enumerate() {
                        if (choice[p] >> bit) & 1 == 1 {
                            senders.insert(q);
                        }
                    }
                    let view: FlatView<Value> = senders.iter().map(|q| (q, inputs[q])).collect();
                    let next_id = local.views.len() as u32;
                    let id = *local_ids.entry(view.clone()).or_insert_with(|| {
                        local.views.push(view);
                        next_id
                    });
                    exec.push(id);
                }
                exec.sort_unstable();
                exec.dedup();
                if local_seen.insert(exec.clone()) {
                    local.executions.push(exec);
                }
                // Advance the odometer.
                let mut p = 0;
                loop {
                    if p == n {
                        break;
                    }
                    choice[p] += 1;
                    if choice[p] < (1u64 << frees[p].len()) {
                        break;
                    }
                    choice[p] = 0;
                    p += 1;
                }
                if p == n {
                    break;
                }
            }
        }
        local
    };

    let mut merger = EnumerationMerger::new(exec_limit);
    let mut assignments = input_assignments(n, values);
    #[cfg(feature = "parallel")]
    loop {
        let batch: Vec<Vec<Value>> = assignments.by_ref().take(INPUT_BATCH).collect();
        if batch.is_empty() {
            break;
        }
        let locals: Vec<LocalEnumeration> = batch
            .par_iter()
            .map(|inputs| enumerate_input(inputs))
            .collect();
        for local in locals {
            merger.absorb(local)?;
        }
    }
    #[cfg(not(feature = "parallel"))]
    for inputs in assignments.by_ref() {
        merger.absorb(enumerate_input(&inputs))?;
    }

    solve_csp(merger.views, merger.executions, k, node_budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksa_models::named;

    const EXECS: usize = 2_000_000;
    const NODES: usize = 50_000_000;

    #[test]
    fn kernel_n3_boundary() {
        // Stars s=1, n=3: Thm 5.4 says 2-set impossible; γ_eq = 3 says
        // 3-set solvable. The decision procedure finds exactly that
        // boundary.
        let m = named::star_unions(3, 1).unwrap();
        let s2 = decide_one_round(&m, 2, 2, EXECS, NODES).unwrap();
        assert_eq!(s2, Solvability::Unsolvable);
        let s3 = decide_one_round(&m, 3, 3, EXECS, NODES).unwrap();
        assert!(s3.is_solvable());
    }

    #[test]
    fn ring_n3_boundary() {
        // Sym(C3): γ_eq(C3) = 2 upper; Thm 5.4 l+1 = 1: consensus
        // impossible; 2-set solvable.
        let m = named::symmetric_ring(3).unwrap();
        let s1 = decide_one_round(&m, 1, 1, EXECS, NODES).unwrap();
        assert_eq!(s1, Solvability::Unsolvable);
        let s2 = decide_one_round(&m, 2, 2, EXECS, NODES).unwrap();
        assert!(s2.is_solvable());
    }

    #[test]
    fn stars_n3_s2_solves_2set() {
        // n=3, s=2: upper n−s+1 = 2, lower n−s = 1 impossible.
        let m = named::star_unions(3, 2).unwrap();
        assert_eq!(
            decide_one_round(&m, 1, 1, EXECS, NODES).unwrap(),
            Solvability::Unsolvable
        );
        assert!(decide_one_round(&m, 2, 2, EXECS, NODES)
            .unwrap()
            .is_solvable());
    }

    #[test]
    fn witness_is_a_working_algorithm() {
        use ksa_graphs::closure::enumerate_closure;
        let m = named::star_unions(3, 2).unwrap();
        let Solvability::Solvable(map) = decide_one_round(&m, 2, 2, EXECS, NODES).unwrap() else {
            panic!("solvable");
        };
        assert!(!map.is_empty());
        // Replay the witness over the whole model: never more than 2
        // distinct decisions, always valid.
        let mut graphs = Vec::new();
        for g in m.generators() {
            graphs.extend(enumerate_closure(g, 1 << 10).unwrap());
        }
        graphs.sort();
        graphs.dedup();
        for a in 0..3u32 {
            for b in 0..3u32 {
                for c in 0..3u32 {
                    let inputs = [a, b, c];
                    for g in &graphs {
                        let mut decs: Vec<Value> = Vec::new();
                        for p in 0..3 {
                            let view: Vec<(usize, Value)> =
                                g.in_set(p).iter().map(|q| (q, inputs[q])).collect();
                            let d = map.decide(&view).expect("reachable view");
                            assert!(inputs.contains(&d), "validity");
                            decs.push(d);
                        }
                        decs.sort_unstable();
                        decs.dedup();
                        assert!(decs.len() <= 2, "agreement");
                    }
                }
            }
        }
    }

    #[test]
    fn clique_solves_consensus() {
        let m = ksa_models::ClosedAboveModel::new(vec![ksa_graphs::Digraph::complete(3).unwrap()])
            .unwrap();
        assert!(decide_one_round(&m, 1, 1, EXECS, NODES)
            .unwrap()
            .is_solvable());
    }

    #[test]
    fn simple_ring_matches_thm_5_1() {
        // ↑C3: γ(C3) = 2; 1-set impossible, 2-set solvable — including by
        // the synthesized map.
        let m = named::simple_ring(3).unwrap();
        assert_eq!(
            decide_one_round(&m, 1, 1, EXECS, NODES).unwrap(),
            Solvability::Unsolvable
        );
        assert!(decide_one_round(&m, 2, 2, EXECS, NODES)
            .unwrap()
            .is_solvable());
    }

    #[test]
    fn parameters_validated() {
        let m = named::simple_ring(3).unwrap();
        assert!(decide_one_round(&m, 0, 1, EXECS, NODES).is_err());
        // Tiny execution budget trips the guard.
        assert!(decide_one_round(&m, 2, 2, 1, NODES).is_err());
    }
}

/// Multi-round exact solvability over an **explicit** graph set: the model
/// plays any graph of `graphs` each round; an `r`-round oblivious
/// algorithm decides from the flat view after `r` rounds. Enumerates all
/// `|graphs|^r` schedules (budgeted) — exact for explicit models, and for
/// closed-above models when `graphs` enumerates the closure(s)
/// (small `n`).
///
/// # Errors
///
/// [`CoreError::BadParameter`] for zero `k`/`r`/empty graphs;
/// [`CoreError::Topology`] (budget) when the schedule × input space
/// exceeds `exec_limit`.
pub fn decide_rounds_explicit(
    graphs: &[ksa_graphs::Digraph],
    k: usize,
    value_max: usize,
    rounds: usize,
    exec_limit: usize,
    node_budget: usize,
) -> Result<Solvability, CoreError> {
    if k == 0 || rounds == 0 || graphs.is_empty() {
        return Err(CoreError::BadParameter {
            name: "k/rounds/graphs",
            value: 0,
            domain: "non-zero / non-empty",
        });
    }
    let n = graphs[0].n();
    let values = value_max as Value + 1;
    let schedules = (graphs.len() as u128)
        .checked_pow(rounds as u32)
        .unwrap_or(u128::MAX);
    let inputs_count = (values as u128).checked_pow(n as u32).unwrap_or(u128::MAX);
    if schedules.saturating_mul(inputs_count) > exec_limit as u128 {
        return Err(CoreError::Topology(ksa_topology::TopologyError::TooLarge {
            what: "multi-round solvability executions",
            estimated: schedules.saturating_mul(inputs_count),
            limit: exec_limit as u128,
        }));
    }

    // Precompute the product graph of every schedule (who heard whom after
    // r rounds), deduplicated — flat views only depend on the product.
    let mut products: Vec<ksa_graphs::Digraph> = Vec::new();
    {
        let mut seen = std::collections::HashSet::new();
        let mut idx = vec![0usize; rounds];
        loop {
            let mut acc = ksa_graphs::Digraph::empty(n)?;
            for &i in &idx {
                acc = ksa_graphs::product::product(&acc, &graphs[i])?;
            }
            if seen.insert(acc.encode()) {
                products.push(acc);
            }
            let mut p = 0;
            loop {
                if p == rounds {
                    break;
                }
                idx[p] += 1;
                if idx[p] < graphs.len() {
                    break;
                }
                idx[p] = 0;
                p += 1;
            }
            if p == rounds {
                break;
            }
        }
    }

    // Views and executions over the deduplicated products; input
    // assignments are the parallel work unit, merged in odometer order
    // (identical numbering to the sequential scan).
    let enumerate_input = |inputs: &[Value]| -> LocalEnumeration {
        let mut local_ids: HashMap<FlatView<Value>, u32> = HashMap::new();
        let mut local = LocalEnumeration {
            views: Vec::new(),
            executions: Vec::new(),
        };
        for g in &products {
            let mut exec: Vec<u32> = Vec::with_capacity(n);
            for p in 0..n {
                let view: FlatView<Value> = g.in_set(p).iter().map(|q| (q, inputs[q])).collect();
                let next_id = local.views.len() as u32;
                let id = *local_ids.entry(view.clone()).or_insert_with(|| {
                    local.views.push(view);
                    next_id
                });
                exec.push(id);
            }
            exec.sort_unstable();
            exec.dedup();
            local.executions.push(exec);
        }
        local
    };

    // The enumeration is within `exec_limit` (checked above), so the
    // merger's limit only needs to catch the distinct-execution
    // overflow, like the sequential scan (which never errored here).
    let mut merger = EnumerationMerger::new(exec_limit);
    let mut assignments = input_assignments(n, values);
    #[cfg(feature = "parallel")]
    loop {
        let batch: Vec<Vec<Value>> = assignments.by_ref().take(INPUT_BATCH).collect();
        if batch.is_empty() {
            break;
        }
        let locals: Vec<LocalEnumeration> = batch
            .par_iter()
            .map(|inputs| enumerate_input(inputs))
            .collect();
        for local in locals {
            merger.absorb(local)?;
        }
    }
    #[cfg(not(feature = "parallel"))]
    for inputs in assignments.by_ref() {
        merger.absorb(enumerate_input(&inputs))?;
    }
    solve_csp(merger.views, merger.executions, k, node_budget)
}

/// Shared CSP core for the one-round and multi-round deciders.
fn solve_csp(
    views: Vec<FlatView<Value>>,
    executions: Vec<Vec<u32>>,
    k: usize,
    node_budget: usize,
) -> Result<Solvability, CoreError> {
    let candidates: Vec<Vec<Value>> = views
        .iter()
        .map(|v| {
            let mut vals: Vec<Value> = v.iter().map(|&(_, val)| val).collect();
            vals.sort_unstable();
            vals.dedup();
            vals
        })
        .collect();
    let mut exec_of_view: Vec<Vec<u32>> = vec![Vec::new(); views.len()];
    for (ei, e) in executions.iter().enumerate() {
        for &v in e {
            exec_of_view[v as usize].push(ei as u32);
        }
    }
    let mut order: Vec<usize> = (0..views.len()).collect();
    order.sort_by_key(|&v| {
        (
            candidates[v].len(),
            std::cmp::Reverse(exec_of_view[v].len()),
        )
    });

    fn exec_ok(
        e: &[u32],
        assignment: &[Option<Value>],
        candidates: &[Vec<Value>],
        k: usize,
    ) -> bool {
        let mut seen: Vec<Value> = Vec::with_capacity(k + 1);
        let mut unassigned: Vec<u32> = Vec::new();
        for &v in e {
            match assignment[v as usize] {
                Some(val) => {
                    if !seen.contains(&val) {
                        seen.push(val);
                    }
                }
                None => unassigned.push(v),
            }
        }
        if seen.len() > k {
            return false;
        }
        if seen.len() == k {
            for v in unassigned {
                if !candidates[v as usize].iter().any(|c| seen.contains(c)) {
                    return false;
                }
            }
        }
        true
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        depth: usize,
        order: &[usize],
        assignment: &mut Vec<Option<Value>>,
        candidates: &[Vec<Value>],
        exec_of_view: &[Vec<u32>],
        executions: &[Vec<u32>],
        k: usize,
        nodes: &mut usize,
        budget: usize,
    ) -> Option<bool> {
        if depth == order.len() {
            return Some(true);
        }
        *nodes += 1;
        if *nodes > budget {
            return None;
        }
        let v = order[depth];
        for &val in &candidates[v] {
            assignment[v] = Some(val);
            let consistent = exec_of_view[v]
                .iter()
                .all(|&ei| exec_ok(&executions[ei as usize], assignment, candidates, k));
            if consistent {
                match dfs(
                    depth + 1,
                    order,
                    assignment,
                    candidates,
                    exec_of_view,
                    executions,
                    k,
                    nodes,
                    budget,
                ) {
                    Some(true) => return Some(true),
                    Some(false) => {}
                    None => {
                        assignment[v] = None;
                        return None;
                    }
                }
            }
            assignment[v] = None;
        }
        Some(false)
    }

    let mut assignment: Vec<Option<Value>> = vec![None; views.len()];
    let mut nodes = 0usize;
    match dfs(
        0,
        &order,
        &mut assignment,
        &candidates,
        &exec_of_view,
        &executions,
        k,
        &mut nodes,
        node_budget,
    ) {
        None => Ok(Solvability::Unknown),
        Some(false) => Ok(Solvability::Unsolvable),
        Some(true) => {
            let mut entries: Vec<(FlatView<Value>, Value)> = views
                .into_iter()
                .zip(assignment)
                .map(|(v, a)| (v, a.expect("complete assignment")))
                .collect();
            entries.sort();
            Ok(Solvability::Solvable(DecisionMap { entries }))
        }
    }
}

#[cfg(test)]
mod multi_round_tests {
    use super::*;
    use ksa_graphs::closure::enumerate_closure;
    use ksa_graphs::families;
    use ksa_models::named;

    const EXECS: usize = 5_000_000;
    const NODES: usize = 50_000_000;

    fn closure_of(model: &ksa_models::ClosedAboveModel) -> Vec<ksa_graphs::Digraph> {
        let mut graphs = Vec::new();
        for g in model.generators() {
            graphs.extend(enumerate_closure(g, 1 << 12).unwrap());
        }
        graphs.sort();
        graphs.dedup();
        graphs
    }

    #[test]
    fn simple_ring_two_rounds_consensus() {
        // γ(C3²) = γ(K3) = 1: consensus solvable in two rounds on ↑C3
        // (Thm 6.3); and still impossible in one (Thm 5.1).
        let m = named::simple_ring(3).unwrap();
        let graphs = closure_of(&m);
        let one = decide_rounds_explicit(&graphs, 1, 1, 1, EXECS, NODES).unwrap();
        assert_eq!(one, Solvability::Unsolvable);
        let two = decide_rounds_explicit(&graphs, 1, 1, 2, EXECS, NODES).unwrap();
        assert!(two.is_solvable());
    }

    #[test]
    fn one_round_agrees_with_dedicated_decider() {
        // The explicit-path decider must agree with the factorized
        // one-round decider.
        let m = named::star_unions(3, 2).unwrap();
        let graphs = closure_of(&m);
        let explicit = decide_rounds_explicit(&graphs, 2, 2, 1, EXECS, NODES).unwrap();
        let direct = decide_one_round(&m, 2, 2, EXECS, NODES).unwrap();
        assert_eq!(explicit.is_solvable(), direct.is_solvable());
        assert!(explicit.is_solvable());
        let explicit1 = decide_rounds_explicit(&graphs, 1, 1, 1, EXECS, NODES).unwrap();
        let direct1 = decide_one_round(&m, 1, 1, EXECS, NODES).unwrap();
        assert_eq!(explicit1, Solvability::Unsolvable);
        assert_eq!(direct1, Solvability::Unsolvable);
    }

    #[test]
    fn kernel_stays_hard_with_more_rounds() {
        // Star unions: (n−s)-set agreement impossible at any round count
        // (Thm 6.13) — machine-checked at r = 2 for n = 3, s = 1.
        let m = named::star_unions(3, 1).unwrap();
        let graphs = closure_of(&m);
        let r2 = decide_rounds_explicit(&graphs, 2, 2, 2, EXECS, NODES).unwrap();
        assert_eq!(r2, Solvability::Unsolvable);
    }

    #[test]
    fn loops_only_never_agrees() {
        // The one-graph model with loops only: every process is isolated;
        // k < n impossible at any r, k = n trivially solvable.
        let g = families::clique(1).unwrap();
        let _ = g;
        let lonely = vec![ksa_graphs::Digraph::empty(3).unwrap()];
        for r in 1..=2 {
            assert_eq!(
                decide_rounds_explicit(&lonely, 2, 2, r, EXECS, NODES).unwrap(),
                Solvability::Unsolvable,
                "r = {r}"
            );
            assert!(decide_rounds_explicit(&lonely, 3, 3, r, EXECS, NODES)
                .unwrap()
                .is_solvable());
        }
    }

    #[test]
    fn budgets_and_parameters() {
        let g = vec![ksa_graphs::Digraph::complete(3).unwrap()];
        assert!(decide_rounds_explicit(&g, 0, 1, 1, EXECS, NODES).is_err());
        assert!(decide_rounds_explicit(&g, 1, 1, 0, EXECS, NODES).is_err());
        assert!(decide_rounds_explicit(&[], 1, 1, 1, EXECS, NODES).is_err());
        assert!(decide_rounds_explicit(&g, 1, 3, 1, 2, NODES).is_err());
    }
}
