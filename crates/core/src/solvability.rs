//! An exact decision procedure for **one-round oblivious solvability** of
//! k-set agreement on a closed-above model (extension beyond the paper).
//!
//! The paper sandwiches solvability between algorithmic upper bounds and
//! topological lower bounds. For small models we can do better: decide it
//! outright. A one-round oblivious algorithm (Def 2.5) *is* a map
//! `δ : flat view → value`, and (for inputs ranging over all assignments
//! of a finite value set) validity forces `δ(V) ∈ values(V)` — deciding a
//! value not heard is invalid in some compatible execution. So:
//!
//! > k-set agreement is solvable in one round by an oblivious algorithm
//! > with inputs from `{0..v}` **iff** there is an assignment of a heard
//! > value to every reachable flat view such that every execution (input
//! > assignment × allowed graph) sees at most `k` distinct values.
//!
//! The executions of a closed-above model factor exactly through the
//! per-process superset choices (Lemma 4.8), so the search space is finite
//! and complete. This module enumerates it and runs a
//! most-constrained-first backtracking search with forward checking.
//!
//! With the `parallel` feature the CSP is decided by a **portfolio
//! search** on the `ksa-exec` work-stealing pool: the canonical
//! most-constrained-first ordering explores its branch tree with
//! work-stealing parallel DFS at the full node budget, while alternate
//! variable/value orderings race the same instance under restart-doubled
//! budget slices; the first strategy to complete (either verdict) cancels
//! the rest through an atomic flag. `Solvable`/`Unsolvable` verdicts are
//! intrinsic to the instance, so decided verdicts are identical at any
//! thread count (only the synthesized witness map may differ — any
//! witness returned is valid; and at the node-budget boundary the
//! portfolio may decide an instance where the lone canonical strategy
//! would report `Unknown`); [`decide_one_round_seq`] is the
//! always-available sequential reference. The up-front [`RunBudget`] guard makes oversized
//! instances fail fast instead of enumerating unbounded superset spaces.
//!
//! `Unsolvable` verdicts over the value range `{0, …, k}` imply general
//! unsolvability (an adversary can always restrict inputs), making this an
//! independent, non-topological check of Thm 5.4's impossibilities — see
//! the `solv` experiment.

use crate::budget::RunBudget;
use crate::error::CoreError;
use crate::task::Value;
#[cfg(feature = "parallel")]
use ksa_exec::prelude::*;
use ksa_models::ClosedAboveModel;
use ksa_models::ObliviousModel;
use ksa_topology::interpretation::FlatView;
use std::collections::HashMap;

/// How many input assignments each parallel batch spans. Batches are
/// enumerated in odometer order and merged in order, so the view/exec
/// numbering is identical to the sequential scan.
#[cfg(feature = "parallel")]
const INPUT_BATCH: usize = 512;

/// Iterator over all input assignments of `n` processes over
/// `{0, …, values − 1}`, in odometer order (process 0 fastest).
fn input_assignments(n: usize, values: Value) -> impl Iterator<Item = Vec<Value>> {
    let mut next: Option<Vec<Value>> = Some(vec![0 as Value; n]);
    std::iter::from_fn(move || {
        let current = next.take()?;
        let mut succ = current.clone();
        let mut p = 0;
        loop {
            if p == n {
                break;
            }
            succ[p] += 1;
            if succ[p] < values {
                next = Some(succ);
                break;
            }
            succ[p] = 0;
            p += 1;
        }
        Some(current)
    })
}

/// The views and executions reachable from one input assignment —
/// views are locally numbered; [`EnumerationMerger`] renumbers them
/// globally.
struct LocalEnumeration {
    views: Vec<FlatView<Value>>,
    /// Executions as sorted, deduplicated local view-id sets.
    executions: Vec<Vec<u32>>,
}

/// Accumulates [`LocalEnumeration`]s (in input order) into the global
/// view table and execution set, enforcing `exec_limit`.
struct EnumerationMerger {
    view_ids: HashMap<FlatView<Value>, u32>,
    views: Vec<FlatView<Value>>,
    executions: Vec<Vec<u32>>,
    seen_exec: std::collections::HashSet<Vec<u32>>,
    exec_limit: usize,
}

impl EnumerationMerger {
    fn new(exec_limit: usize) -> Self {
        EnumerationMerger {
            view_ids: HashMap::new(),
            views: Vec::new(),
            executions: Vec::new(),
            seen_exec: std::collections::HashSet::new(),
            exec_limit,
        }
    }

    fn absorb(&mut self, local: LocalEnumeration) -> Result<(), CoreError> {
        let remap: Vec<u32> = local
            .views
            .into_iter()
            .map(|view| {
                let next_id = self.views.len() as u32;
                *self.view_ids.entry(view.clone()).or_insert_with(|| {
                    self.views.push(view);
                    next_id
                })
            })
            .collect();
        for exec in local.executions {
            let mut mapped: Vec<u32> = exec.into_iter().map(|v| remap[v as usize]).collect();
            mapped.sort_unstable();
            mapped.dedup();
            if self.seen_exec.insert(mapped.clone()) {
                self.executions.push(mapped);
                if self.executions.len() > self.exec_limit {
                    return Err(CoreError::Topology(ksa_topology::TopologyError::TooLarge {
                        what: "solvability executions",
                        estimated: self.executions.len() as u128,
                        limit: self.exec_limit as u128,
                    }));
                }
            }
        }
        Ok(())
    }
}

/// Verdict of the decision procedure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Solvability {
    /// A decision map exists; the witness maps each reachable flat view to
    /// its decision.
    Solvable(DecisionMap),
    /// No decision map exists: k-set agreement is not solvable in one
    /// round by any oblivious algorithm, for inputs over the given values.
    Unsolvable,
    /// The node budget was exhausted before the search completed.
    Unknown,
}

impl Solvability {
    /// Whether the verdict is `Solvable`.
    pub fn is_solvable(&self) -> bool {
        matches!(self, Solvability::Solvable(_))
    }
}

/// A witnessing oblivious decision map (flat view → decided value).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DecisionMap {
    entries: Vec<(FlatView<Value>, Value)>,
}

impl DecisionMap {
    /// The decision for a flat view, if the view was reachable in the
    /// analyzed model.
    pub fn decide(&self, view: &FlatView<Value>) -> Option<Value> {
        self.entries
            .binary_search_by(|(v, _)| v.cmp(view))
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// Number of distinct reachable views.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl crate::algorithms::ObliviousAlgorithm for DecisionMap {
    fn name(&self) -> &'static str {
        "synthesized-decision-map"
    }

    fn decide(&self, _me: usize, view: &FlatView<Value>) -> Value {
        DecisionMap::decide(self, view).unwrap_or_else(|| {
            // Unreachable views (shouldn't occur on the analyzed model):
            // fall back to the minimum heard value.
            view.iter().map(|&(_, v)| v).min().expect("non-empty view")
        })
    }
}

/// The views and executions reachable from one input assignment of the
/// one-round decider: every generator, every per-process superset choice
/// (the odometer over "free bits" — processes not already heard).
fn one_round_enumerate_input(
    model: &ClosedAboveModel,
    n: usize,
    inputs: &[Value],
) -> LocalEnumeration {
    let mut local_ids: HashMap<FlatView<Value>, u32> = HashMap::new();
    let mut local_seen: std::collections::HashSet<Vec<u32>> = std::collections::HashSet::new();
    let mut local = LocalEnumeration {
        views: Vec::new(),
        executions: Vec::new(),
    };
    for g in model.generators() {
        // Per-process free bits (processes not already heard).
        let bases: Vec<ksa_graphs::ProcSet> = (0..n).map(|p| g.in_set(p)).collect();
        let frees: Vec<Vec<usize>> = bases
            .iter()
            .map(|b| b.complement(n).iter().collect())
            .collect();
        // Odometer over all per-process superset choices.
        let mut choice: Vec<u64> = vec![0; n];
        loop {
            let mut exec: Vec<u32> = Vec::with_capacity(n);
            for p in 0..n {
                let mut senders = bases[p];
                for (bit, &q) in frees[p].iter().enumerate() {
                    if (choice[p] >> bit) & 1 == 1 {
                        senders.insert(q);
                    }
                }
                let view: FlatView<Value> = senders.iter().map(|q| (q, inputs[q])).collect();
                let next_id = local.views.len() as u32;
                let id = *local_ids.entry(view.clone()).or_insert_with(|| {
                    local.views.push(view);
                    next_id
                });
                exec.push(id);
            }
            exec.sort_unstable();
            exec.dedup();
            if local_seen.insert(exec.clone()) {
                local.executions.push(exec);
            }
            // Advance the odometer.
            let mut p = 0;
            loop {
                if p == n {
                    break;
                }
                choice[p] += 1;
                if choice[p] < (1u64 << frees[p].len()) {
                    break;
                }
                choice[p] = 0;
                p += 1;
            }
            if p == n {
                break;
            }
        }
    }
    local
}

/// Merges every input assignment's local enumeration sequentially, in
/// odometer order.
fn merge_all_seq<F>(
    n: usize,
    values: Value,
    exec_limit: usize,
    enumerate: F,
) -> Result<EnumerationMerger, CoreError>
where
    F: Fn(&[Value]) -> LocalEnumeration,
{
    let mut merger = EnumerationMerger::new(exec_limit);
    for inputs in input_assignments(n, values) {
        merger.absorb(enumerate(&inputs))?;
    }
    Ok(merger)
}

/// Merges every input assignment's local enumeration, fanning the
/// assignments out on the work-stealing pool in bounded batches. Local
/// enumerations merge in odometer order, so the view and execution
/// numbering is identical to [`merge_all_seq`].
#[cfg(feature = "parallel")]
fn merge_all<F>(
    n: usize,
    values: Value,
    exec_limit: usize,
    enumerate: F,
) -> Result<EnumerationMerger, CoreError>
where
    F: Fn(&[Value]) -> LocalEnumeration + Sync,
{
    let mut merger = EnumerationMerger::new(exec_limit);
    let mut assignments = input_assignments(n, values);
    loop {
        let batch: Vec<Vec<Value>> = assignments.by_ref().take(INPUT_BATCH).collect();
        if batch.is_empty() {
            break;
        }
        let locals: Vec<LocalEnumeration> =
            batch.par_iter().map(|inputs| enumerate(inputs)).collect();
        for local in locals {
            merger.absorb(local)?;
        }
    }
    Ok(merger)
}

#[cfg(not(feature = "parallel"))]
fn merge_all<F>(
    n: usize,
    values: Value,
    exec_limit: usize,
    enumerate: F,
) -> Result<EnumerationMerger, CoreError>
where
    F: Fn(&[Value]) -> LocalEnumeration + Sync,
{
    merge_all_seq(n, values, exec_limit, enumerate)
}

/// Upper bound on the raw superset-odometer space the one-round decider
/// scans: `values^n` input assignments × `Σ_g 2^{free bits of g}`
/// superset choices. This is what actually bounds the *work* (distinct
/// executions after dedup can be far fewer), so it is what the
/// [`RunBudget`] admits up front.
fn one_round_raw_estimate(model: &ClosedAboveModel, n: usize, values: Value) -> u128 {
    let inputs = (values as u128).checked_pow(n as u32).unwrap_or(u128::MAX);
    let mut per_input: u128 = 0;
    for g in model.generators() {
        let free_bits: u32 = (0..n)
            .map(|p| g.in_set(p).complement(n).iter().count() as u32)
            .sum();
        let supersets = if free_bits >= 127 {
            u128::MAX
        } else {
            1u128 << free_bits
        };
        per_input = per_input.saturating_add(supersets);
    }
    inputs.saturating_mul(per_input)
}

fn validate_k(k: usize) -> Result<(), CoreError> {
    if k == 0 {
        return Err(CoreError::BadParameter {
            name: "k",
            value: 0,
            domain: "[1, n]",
        });
    }
    Ok(())
}

/// Decides one-round oblivious solvability of k-set agreement on `model`
/// with inputs from `{0, …, value_max}`.
///
/// `exec_limit` is the [`RunBudget`] of the search: it bounds both the
/// raw superset space scanned by the enumeration (checked **up front**,
/// so oversized instances fail fast instead of running unbounded) and
/// the number of distinct executions retained. `node_budget` bounds the
/// backtracking nodes per search strategy (exceeding it returns
/// [`Solvability::Unknown`]).
///
/// With the `parallel` feature the CSP runs as a racing portfolio on the
/// work-stealing pool (see the module docs). Decided verdicts
/// (`Solvable`/`Unsolvable`) are intrinsic to the instance and therefore
/// identical to [`decide_one_round_seq`] at any thread count; at the
/// `node_budget` boundary, however, the portfolio may decide an instance
/// the sequential scan gives up on (it returns a verdict where the
/// reference returns [`Solvability::Unknown`] — never a *different*
/// decided verdict).
///
/// # Errors
///
/// [`CoreError::BadParameter`] for `k = 0`; [`CoreError::Budget`] when
/// the superset space exceeds `exec_limit`; [`CoreError::Topology`]
/// (budget) when the distinct-execution count exceeds `exec_limit`.
pub fn decide_one_round(
    model: &ClosedAboveModel,
    k: usize,
    value_max: usize,
    exec_limit: usize,
    node_budget: usize,
) -> Result<Solvability, CoreError> {
    validate_k(k)?;
    let n = model.n();
    let values = value_max as Value + 1;
    RunBudget::new(exec_limit as u128).admit(
        "solvability superset enumeration",
        one_round_raw_estimate(model, n, values),
    )?;
    // The executions of one input assignment are independent of every
    // other assignment's, so assignments are the parallel work unit.
    let merger = merge_all(n, values, exec_limit, |inputs: &[Value]| {
        one_round_enumerate_input(model, n, inputs)
    })?;
    solve_csp(merger.views, merger.executions, k, node_budget)
}

/// The sequential reference implementation of [`decide_one_round`]:
/// single-threaded enumeration and the canonical most-constrained-first
/// backtracking search, regardless of the `parallel` feature.
///
/// Exists so tests (and skeptical users) can cross-check that the
/// portfolio search returns the same verdicts; it is also what the
/// `parallel`-less build of [`decide_one_round`] effectively runs.
///
/// # Errors
///
/// Same conditions as [`decide_one_round`].
pub fn decide_one_round_seq(
    model: &ClosedAboveModel,
    k: usize,
    value_max: usize,
    exec_limit: usize,
    node_budget: usize,
) -> Result<Solvability, CoreError> {
    validate_k(k)?;
    let n = model.n();
    let values = value_max as Value + 1;
    RunBudget::new(exec_limit as u128).admit(
        "solvability superset enumeration",
        one_round_raw_estimate(model, n, values),
    )?;
    let merger = merge_all_seq(n, values, exec_limit, |inputs: &[Value]| {
        one_round_enumerate_input(model, n, inputs)
    })?;
    solve_csp_seq(
        CspInstance::new(merger.views, merger.executions, k),
        node_budget,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksa_models::named;

    const EXECS: usize = 2_000_000;
    const NODES: usize = 50_000_000;

    #[test]
    fn kernel_n3_boundary() {
        // Stars s=1, n=3: Thm 5.4 says 2-set impossible; γ_eq = 3 says
        // 3-set solvable. The decision procedure finds exactly that
        // boundary.
        let m = named::star_unions(3, 1).unwrap();
        let s2 = decide_one_round(&m, 2, 2, EXECS, NODES).unwrap();
        assert_eq!(s2, Solvability::Unsolvable);
        let s3 = decide_one_round(&m, 3, 3, EXECS, NODES).unwrap();
        assert!(s3.is_solvable());
    }

    #[test]
    fn ring_n3_boundary() {
        // Sym(C3): γ_eq(C3) = 2 upper; Thm 5.4 l+1 = 1: consensus
        // impossible; 2-set solvable.
        let m = named::symmetric_ring(3).unwrap();
        let s1 = decide_one_round(&m, 1, 1, EXECS, NODES).unwrap();
        assert_eq!(s1, Solvability::Unsolvable);
        let s2 = decide_one_round(&m, 2, 2, EXECS, NODES).unwrap();
        assert!(s2.is_solvable());
    }

    #[test]
    fn stars_n3_s2_solves_2set() {
        // n=3, s=2: upper n−s+1 = 2, lower n−s = 1 impossible.
        let m = named::star_unions(3, 2).unwrap();
        assert_eq!(
            decide_one_round(&m, 1, 1, EXECS, NODES).unwrap(),
            Solvability::Unsolvable
        );
        assert!(decide_one_round(&m, 2, 2, EXECS, NODES)
            .unwrap()
            .is_solvable());
    }

    #[test]
    fn witness_is_a_working_algorithm() {
        use ksa_graphs::closure::enumerate_closure;
        let m = named::star_unions(3, 2).unwrap();
        let Solvability::Solvable(map) = decide_one_round(&m, 2, 2, EXECS, NODES).unwrap() else {
            panic!("solvable");
        };
        assert!(!map.is_empty());
        // Replay the witness over the whole model: never more than 2
        // distinct decisions, always valid.
        let mut graphs = Vec::new();
        for g in m.generators() {
            graphs.extend(enumerate_closure(g, 1 << 10).unwrap());
        }
        graphs.sort();
        graphs.dedup();
        for a in 0..3u32 {
            for b in 0..3u32 {
                for c in 0..3u32 {
                    let inputs = [a, b, c];
                    for g in &graphs {
                        let mut decs: Vec<Value> = Vec::new();
                        for p in 0..3 {
                            let view: Vec<(usize, Value)> =
                                g.in_set(p).iter().map(|q| (q, inputs[q])).collect();
                            let d = map.decide(&view).expect("reachable view");
                            assert!(inputs.contains(&d), "validity");
                            decs.push(d);
                        }
                        decs.sort_unstable();
                        decs.dedup();
                        assert!(decs.len() <= 2, "agreement");
                    }
                }
            }
        }
    }

    #[test]
    fn clique_solves_consensus() {
        let m = ksa_models::ClosedAboveModel::new(vec![ksa_graphs::Digraph::complete(3).unwrap()])
            .unwrap();
        assert!(decide_one_round(&m, 1, 1, EXECS, NODES)
            .unwrap()
            .is_solvable());
    }

    #[test]
    fn simple_ring_matches_thm_5_1() {
        // ↑C3: γ(C3) = 2; 1-set impossible, 2-set solvable — including by
        // the synthesized map.
        let m = named::simple_ring(3).unwrap();
        assert_eq!(
            decide_one_round(&m, 1, 1, EXECS, NODES).unwrap(),
            Solvability::Unsolvable
        );
        assert!(decide_one_round(&m, 2, 2, EXECS, NODES)
            .unwrap()
            .is_solvable());
    }

    #[test]
    fn parameters_validated() {
        let m = named::simple_ring(3).unwrap();
        assert!(decide_one_round(&m, 0, 1, EXECS, NODES).is_err());
        // Tiny execution budget trips the guard.
        assert!(decide_one_round(&m, 2, 2, 1, NODES).is_err());
    }

    #[test]
    fn oversized_instance_fails_fast() {
        // n = 6 star unions: the raw superset odometer is ~2^25 choices
        // per graph × 64 inputs — far past any reasonable exec budget.
        // The up-front RunBudget admit must reject it immediately
        // (previously the enumeration scanned the whole raw space and
        // only the distinct-execution limit could stop it, maybe never).
        let m = named::star_unions(6, 1).unwrap();
        let err = decide_one_round(&m, 2, 1, 100_000, NODES).unwrap_err();
        assert!(matches!(err, crate::CoreError::Budget(_)), "{err:?}");
        // The sequential reference enforces the same guard.
        assert!(decide_one_round_seq(&m, 2, 1, 100_000, NODES).is_err());
    }

    #[test]
    fn portfolio_agrees_with_sequential_reference() {
        // The racing portfolio must return bit-identical verdicts to the
        // sequential most-constrained-first scan on the whole small zoo.
        // One solvable and one unsolvable case from two different model
        // families (the randomized breadth lives in the
        // `solvability_parallel` proptest suite).
        for (model, k) in [
            (named::star_unions(3, 1).unwrap(), 2),
            (named::star_unions(3, 1).unwrap(), 3),
            (named::symmetric_ring(3).unwrap(), 1),
            (named::simple_ring(3).unwrap(), 2),
        ] {
            let par = decide_one_round(&model, k, k, EXECS, NODES).unwrap();
            let seq = decide_one_round_seq(&model, k, k, EXECS, NODES).unwrap();
            assert_eq!(
                std::mem::discriminant(&par),
                std::mem::discriminant(&seq),
                "verdicts diverge at k = {k}"
            );
            // Either witness must cover the same reachable views.
            if let (Solvability::Solvable(a), Solvability::Solvable(b)) = (&par, &seq) {
                assert_eq!(a.len(), b.len());
            }
        }
    }
}

/// Multi-round exact solvability over an **explicit** graph set: the model
/// plays any graph of `graphs` each round; an `r`-round oblivious
/// algorithm decides from the flat view after `r` rounds. Enumerates all
/// `|graphs|^r` schedules (budgeted) — exact for explicit models, and for
/// closed-above models when `graphs` enumerates the closure(s)
/// (small `n`).
///
/// # Errors
///
/// [`CoreError::BadParameter`] for zero `k`/`r`/empty graphs;
/// [`CoreError::Budget`] when the schedule × input space exceeds
/// `exec_limit`; [`CoreError::Topology`] (budget) when the
/// distinct-execution count exceeds it.
pub fn decide_rounds_explicit(
    graphs: &[ksa_graphs::Digraph],
    k: usize,
    value_max: usize,
    rounds: usize,
    exec_limit: usize,
    node_budget: usize,
) -> Result<Solvability, CoreError> {
    if k == 0 || rounds == 0 || graphs.is_empty() {
        return Err(CoreError::BadParameter {
            name: "k/rounds/graphs",
            value: 0,
            domain: "non-zero / non-empty",
        });
    }
    let n = graphs[0].n();
    let values = value_max as Value + 1;
    let schedules = (graphs.len() as u128)
        .checked_pow(rounds as u32)
        .unwrap_or(u128::MAX);
    let inputs_count = (values as u128).checked_pow(n as u32).unwrap_or(u128::MAX);
    RunBudget::new(exec_limit as u128).admit(
        "multi-round solvability executions",
        schedules.saturating_mul(inputs_count),
    )?;

    // Precompute the product graph of every schedule (who heard whom after
    // r rounds), deduplicated — flat views only depend on the product.
    let mut products: Vec<ksa_graphs::Digraph> = Vec::new();
    {
        let mut seen = std::collections::HashSet::new();
        let mut idx = vec![0usize; rounds];
        loop {
            let mut acc = ksa_graphs::Digraph::empty(n)?;
            for &i in &idx {
                acc = ksa_graphs::product::product(&acc, &graphs[i])?;
            }
            if seen.insert(acc.encode()) {
                products.push(acc);
            }
            let mut p = 0;
            loop {
                if p == rounds {
                    break;
                }
                idx[p] += 1;
                if idx[p] < graphs.len() {
                    break;
                }
                idx[p] = 0;
                p += 1;
            }
            if p == rounds {
                break;
            }
        }
    }

    // Views and executions over the deduplicated products; input
    // assignments are the parallel work unit, merged in odometer order
    // (identical numbering to the sequential scan).
    let enumerate_input = |inputs: &[Value]| -> LocalEnumeration {
        let mut local_ids: HashMap<FlatView<Value>, u32> = HashMap::new();
        let mut local = LocalEnumeration {
            views: Vec::new(),
            executions: Vec::new(),
        };
        for g in &products {
            let mut exec: Vec<u32> = Vec::with_capacity(n);
            for p in 0..n {
                let view: FlatView<Value> = g.in_set(p).iter().map(|q| (q, inputs[q])).collect();
                let next_id = local.views.len() as u32;
                let id = *local_ids.entry(view.clone()).or_insert_with(|| {
                    local.views.push(view);
                    next_id
                });
                exec.push(id);
            }
            exec.sort_unstable();
            exec.dedup();
            local.executions.push(exec);
        }
        local
    };

    // The enumeration is within `exec_limit` (checked above), so the
    // merger's limit only needs to catch the distinct-execution
    // overflow, like the sequential scan (which never errored here).
    let merger = merge_all(n, values, exec_limit, enumerate_input)?;
    solve_csp(merger.views, merger.executions, k, node_budget)
}

// --- The CSP core ----------------------------------------------------------

/// A preprocessed solvability CSP: one variable per reachable view, its
/// domain the values heard in that view, one ≤-k-distinct constraint per
/// execution. Shared by the sequential and portfolio searches.
struct CspInstance {
    views: Vec<FlatView<Value>>,
    /// Per-view candidate decisions (heard values, sorted ascending).
    candidates: Vec<Vec<Value>>,
    /// For each view, the executions watching it.
    exec_of_view: Vec<Vec<u32>>,
    executions: Vec<Vec<u32>>,
    k: usize,
}

impl CspInstance {
    fn new(views: Vec<FlatView<Value>>, executions: Vec<Vec<u32>>, k: usize) -> Self {
        let candidates: Vec<Vec<Value>> = views
            .iter()
            .map(|v| {
                let mut vals: Vec<Value> = v.iter().map(|&(_, val)| val).collect();
                vals.sort_unstable();
                vals.dedup();
                vals
            })
            .collect();
        let mut exec_of_view: Vec<Vec<u32>> = vec![Vec::new(); views.len()];
        for (ei, e) in executions.iter().enumerate() {
            for &v in e {
                exec_of_view[v as usize].push(ei as u32);
            }
        }
        CspInstance {
            views,
            candidates,
            exec_of_view,
            executions,
            k,
        }
    }

    /// The canonical variable ordering: fewest candidates first
    /// (most-constrained), most-watched first on ties. Identical to the
    /// historical sequential scan.
    fn order_most_constrained(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.views.len()).collect();
        order.sort_by_key(|&v| {
            (
                self.candidates[v].len(),
                std::cmp::Reverse(self.exec_of_view[v].len()),
            )
        });
        order
    }

    /// Most-watched views first (maximum constraint degree), candidate
    /// count on ties — fails fast on models whose conflicts concentrate
    /// in a few executions.
    #[cfg(feature = "parallel")]
    fn order_max_degree(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.views.len()).collect();
        order.sort_by_key(|&v| {
            (
                std::cmp::Reverse(self.exec_of_view[v].len()),
                self.candidates[v].len(),
            )
        });
        order
    }

    /// Enumeration (view-id) order — the cheap "no heuristic" control
    /// that occasionally wins on near-symmetric instances.
    #[cfg(feature = "parallel")]
    fn order_natural(&self) -> Vec<usize> {
        (0..self.views.len()).collect()
    }

    /// Packages a complete assignment as the `Solvable` witness.
    fn into_solvable(self, assignment: Vec<Option<Value>>) -> Solvability {
        let mut entries: Vec<(FlatView<Value>, Value)> = self
            .views
            .into_iter()
            .zip(assignment)
            .map(|(v, a)| (v, a.expect("complete assignment")))
            .collect();
        entries.sort();
        Solvability::Solvable(DecisionMap { entries })
    }
}

/// Whether execution `e` can still see ≤ k distinct decisions: the
/// assigned views must not exceed k values already, and once k values
/// are reached every unassigned view of `e` must be able to repeat one.
fn exec_ok(e: &[u32], assignment: &[Option<Value>], candidates: &[Vec<Value>], k: usize) -> bool {
    let mut seen: Vec<Value> = Vec::with_capacity(k + 1);
    let mut unassigned: Vec<u32> = Vec::new();
    for &v in e {
        match assignment[v as usize] {
            Some(val) => {
                if !seen.contains(&val) {
                    seen.push(val);
                }
            }
            None => unassigned.push(v),
        }
    }
    if seen.len() > k {
        return false;
    }
    if seen.len() == k {
        for v in unassigned {
            if !candidates[v as usize].iter().any(|c| seen.contains(c)) {
                return false;
            }
        }
    }
    true
}

/// Whether assigning view `v` (already written into `assignment`) keeps
/// every execution watching `v` satisfiable.
fn view_consistent(csp: &CspInstance, v: usize, assignment: &[Option<Value>]) -> bool {
    csp.exec_of_view[v].iter().all(|&ei| {
        exec_ok(
            &csp.executions[ei as usize],
            assignment,
            &csp.candidates,
            csp.k,
        )
    })
}

/// Dispatches between the portfolio search (`parallel`) and the
/// sequential reference.
fn solve_csp(
    views: Vec<FlatView<Value>>,
    executions: Vec<Vec<u32>>,
    k: usize,
    node_budget: usize,
) -> Result<Solvability, CoreError> {
    let instance = CspInstance::new(views, executions, k);
    let _span = ksa_obs::span("core", || "csp_decide").arg("views", instance.views.len() as u64);
    #[cfg(feature = "parallel")]
    {
        solve_csp_portfolio(instance, node_budget)
    }
    #[cfg(not(feature = "parallel"))]
    {
        solve_csp_seq(instance, node_budget)
    }
}

/// The sequential most-constrained-first backtracking search (the
/// deterministic reference semantics).
fn solve_csp_seq(instance: CspInstance, node_budget: usize) -> Result<Solvability, CoreError> {
    let order = instance.order_most_constrained();

    fn dfs(
        csp: &CspInstance,
        order: &[usize],
        depth: usize,
        assignment: &mut Vec<Option<Value>>,
        nodes: &mut usize,
        budget: usize,
    ) -> Option<bool> {
        if depth == order.len() {
            return Some(true);
        }
        *nodes += 1;
        if *nodes > budget {
            return None;
        }
        let v = order[depth];
        for i in 0..csp.candidates[v].len() {
            let val = csp.candidates[v][i];
            assignment[v] = Some(val);
            if view_consistent(csp, v, assignment) {
                match dfs(csp, order, depth + 1, assignment, nodes, budget) {
                    Some(true) => return Some(true),
                    Some(false) => {}
                    None => {
                        assignment[v] = None;
                        return None;
                    }
                }
            }
            assignment[v] = None;
        }
        Some(false)
    }

    let mut assignment: Vec<Option<Value>> = vec![None; instance.views.len()];
    let mut nodes = 0usize;
    ksa_obs::count(ksa_obs::Counter::CspVerdicts, 1);
    match dfs(
        &instance,
        &order,
        0,
        &mut assignment,
        &mut nodes,
        node_budget,
    ) {
        None => Ok(Solvability::Unknown),
        Some(false) => Ok(Solvability::Unsolvable),
        Some(true) => Ok(instance.into_solvable(assignment)),
    }
}

// --- The portfolio search (parallel) ---------------------------------------

/// Outcome of one (sub)tree exploration in the portfolio search.
#[cfg(feature = "parallel")]
enum Branch {
    /// A complete consistent assignment (the decision-map witness).
    Solved(Vec<Option<Value>>),
    /// The subtree holds no solution.
    Exhausted,
    /// The strategy's node budget ran out first.
    OutOfBudget,
    /// Another strategy (or a sibling's success) cancelled this search.
    Cancelled,
}

/// Per-strategy search context: the instance, this strategy's orderings,
/// the cancellation plumbing and its node budget.
#[cfg(feature = "parallel")]
struct StratCtx<'a> {
    csp: &'a CspInstance,
    order: &'a [usize],
    reverse_values: bool,
    /// Depths below this explore candidate values as parallel subtree
    /// tasks (work-stealing DFS); deeper levels run sequentially.
    split_depth: usize,
    /// Portfolio-wide first-success/first-verdict cancellation.
    cancel: &'a std::sync::atomic::AtomicBool,
    /// This strategy found a solution — prunes its sibling subtrees.
    found: &'a std::sync::atomic::AtomicBool,
    /// Shared node counter (flushed in batches from task-local counts).
    nodes: &'a std::sync::atomic::AtomicUsize,
    budget: usize,
}

#[cfg(feature = "parallel")]
impl StratCtx<'_> {
    fn cancelled(&self) -> bool {
        use std::sync::atomic::Ordering;
        self.cancel.load(Ordering::Relaxed) || self.found.load(Ordering::Relaxed)
    }

    /// Counts one node; returns `true` when the strategy is over budget.
    /// Task-local counts flush to the shared counter in batches, so the
    /// budget is enforced within ±(tasks × 1024) nodes of the limit —
    /// callers near that boundary should expect `Unknown` verdicts to be
    /// scheduling-dependent (the `Solvable`/`Unsolvable` verdicts never
    /// are).
    fn tick(&self, local: &mut usize) -> bool {
        use std::sync::atomic::Ordering;
        *local += 1;
        if *local >= 1024 {
            self.nodes.fetch_add(*local, Ordering::Relaxed);
            ksa_obs::perf_count(ksa_obs::PerfCounter::PortfolioNodes, *local as u64);
            *local = 0;
        }
        self.nodes.load(Ordering::Relaxed) + *local > self.budget
    }

    /// The `i`-th candidate value of view `v` in this strategy's
    /// iteration direction (allocation-free: called once per node).
    fn value_at(&self, v: usize, i: usize) -> Value {
        let vals = &self.csp.candidates[v];
        if self.reverse_values {
            vals[vals.len() - 1 - i]
        } else {
            vals[i]
        }
    }
}

/// Work-stealing DFS over the branch tree of one strategy: shallow
/// depths fan candidate values out as stealable subtree tasks, deeper
/// levels backtrack sequentially with undo.
#[cfg(feature = "parallel")]
fn pdfs(
    ctx: &StratCtx<'_>,
    depth: usize,
    assignment: &mut Vec<Option<Value>>,
    local: &mut usize,
) -> Branch {
    use std::sync::atomic::Ordering;
    if ctx.cancelled() {
        return Branch::Cancelled;
    }
    if depth == ctx.order.len() {
        // Prune sibling subtrees of this strategy immediately.
        ctx.found.store(true, Ordering::Relaxed);
        return Branch::Solved(assignment.clone());
    }
    if ctx.tick(local) {
        return Branch::OutOfBudget;
    }
    let v = ctx.order[depth];
    let arity = ctx.csp.candidates[v].len();

    if depth < ctx.split_depth && arity > 1 {
        // Fork: one independent assignment snapshot per viable value.
        let mut branches: Vec<Vec<Option<Value>>> = Vec::with_capacity(arity);
        for i in 0..arity {
            assignment[v] = Some(ctx.value_at(v, i));
            if view_consistent(ctx.csp, v, assignment) {
                branches.push(assignment.clone());
            }
            assignment[v] = None;
        }
        return par_branches(ctx, depth, branches);
    }

    for i in 0..arity {
        assignment[v] = Some(ctx.value_at(v, i));
        if view_consistent(ctx.csp, v, assignment) {
            match pdfs(ctx, depth + 1, assignment, local) {
                Branch::Exhausted => {}
                done => {
                    assignment[v] = None;
                    return done;
                }
            }
        }
        assignment[v] = None;
    }
    Branch::Exhausted
}

/// Explores the viable value-branches of one split node, recursively
/// halving them across `ksa_exec::join` so idle workers steal the
/// larger half.
#[cfg(feature = "parallel")]
fn par_branches(ctx: &StratCtx<'_>, depth: usize, mut branches: Vec<Vec<Option<Value>>>) -> Branch {
    use std::sync::atomic::Ordering;
    match branches.len() {
        0 => Branch::Exhausted,
        1 => {
            let mut assignment = branches.pop().expect("one branch");
            let mut local = 0usize;
            let out = pdfs(ctx, depth + 1, &mut assignment, &mut local);
            ctx.nodes.fetch_add(local, Ordering::Relaxed);
            ksa_obs::perf_count(ksa_obs::PerfCounter::PortfolioNodes, local as u64);
            out
        }
        _ => {
            let right = branches.split_off(branches.len() / 2);
            let (left_out, right_out) = ksa_exec::join(
                || par_branches(ctx, depth, branches),
                || par_branches(ctx, depth, right),
            );
            // Any Solved wins (all verdicts agree on solvability, so
            // preferring the left one only stabilizes the witness);
            // OutOfBudget taints the subtree, Cancelled propagates.
            match (left_out, right_out) {
                (Branch::Solved(s), _) | (_, Branch::Solved(s)) => Branch::Solved(s),
                (Branch::OutOfBudget, _) | (_, Branch::OutOfBudget) => Branch::OutOfBudget,
                (Branch::Cancelled, _) | (_, Branch::Cancelled) => Branch::Cancelled,
                (Branch::Exhausted, Branch::Exhausted) => Branch::Exhausted,
            }
        }
    }
}

/// A portfolio member: a variable ordering plus a value-iteration
/// direction.
#[cfg(feature = "parallel")]
struct Strategy {
    order: Vec<usize>,
    reverse_values: bool,
}

/// The racing portfolio search.
///
/// The **canonical** strategy (most-constrained-first — the sequential
/// reference ordering) explores its branch tree with work-stealing
/// parallel DFS at the full node budget. The **alternate** orderings
/// race the same instance as cheap sequential probes under
/// restart-doubled budget slices — if one of them gets lucky it wins
/// outright; if not, it exhausts its slice quickly and its worker goes
/// back to stealing canonical subtrees. The first strategy to complete
/// sets the cancellation flag; everyone else stops at their next node.
///
/// `Solvable`/`Unsolvable` are intrinsic to the instance, so whichever
/// strategy finishes first yields the same verdict — bit-identical at
/// any thread count. `Unknown` means the canonical strategy ran out of
/// its full `node_budget` with no alternate finishing either.
#[cfg(feature = "parallel")]
fn solve_csp_portfolio(
    instance: CspInstance,
    node_budget: usize,
) -> Result<Solvability, CoreError> {
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Mutex;

    ksa_obs::count(ksa_obs::Counter::CspVerdicts, 1);
    let threads = ksa_exec::current_num_threads();
    let split_depth = if threads <= 1 {
        // One worker: skip forking entirely — node accounting then
        // matches the sequential reference exactly.
        0
    } else {
        (usize::BITS - threads.leading_zeros()) as usize + 2
    };

    let canonical = Strategy {
        order: instance.order_most_constrained(),
        reverse_values: false,
    };
    let alternates = [
        Strategy {
            order: instance.order_max_degree(),
            reverse_values: false,
        },
        Strategy {
            order: instance.order_most_constrained(),
            reverse_values: true,
        },
        Strategy {
            order: instance.order_natural(),
            reverse_values: false,
        },
    ];

    let cancel = AtomicBool::new(false);
    let canonical_out_of_budget = AtomicBool::new(false);
    let winner: Mutex<Option<Branch>> = Mutex::new(None);
    let csp = &instance;
    // Returns whether this result became the winning verdict, so the
    // call sites can attribute the win to their strategy family.
    let report = |result: Branch| -> bool {
        let mut slot = winner.lock().expect("winner slot poisoned");
        if slot.is_none() {
            *slot = Some(result);
            cancel.store(true, Ordering::SeqCst);
            true
        } else {
            false
        }
    };

    ksa_exec::scope(|s| {
        // Spawn order matters at low thread counts: the scope's worker
        // pops its deque LIFO while thieves steal FIFO. Canonical is
        // pushed first (stolen immediately by the first idle worker);
        // the alternates are pushed after, in reverse preference order,
        // so a lone worker runs the cheap bounded probes *before*
        // committing to the full canonical search — on instances where
        // an alternate ordering collapses the proof (empirically: the
        // whole `solv` zoo), even a single-threaded run wins big, at
        // the cost of a few bounded probe ladders when none does.
        {
            let (cancel, report, canonical_oob, canonical) =
                (&cancel, &report, &canonical_out_of_budget, &canonical);
            s.spawn(move |_| {
                let found = AtomicBool::new(false);
                let nodes = AtomicUsize::new(0);
                let ctx = StratCtx {
                    csp,
                    order: &canonical.order,
                    reverse_values: canonical.reverse_values,
                    split_depth,
                    cancel,
                    found: &found,
                    nodes: &nodes,
                    budget: node_budget,
                };
                let mut assignment = vec![None; csp.views.len()];
                let mut local = 0usize;
                let out = pdfs(&ctx, 0, &mut assignment, &mut local);
                ksa_obs::perf_count(ksa_obs::PerfCounter::PortfolioNodes, local as u64);
                match out {
                    done @ (Branch::Solved(_) | Branch::Exhausted) => {
                        if report(done) {
                            ksa_obs::perf_count(ksa_obs::PerfCounter::PortfolioCanonicalWins, 1);
                        }
                    }
                    Branch::OutOfBudget => canonical_oob.store(true, Ordering::SeqCst),
                    Branch::Cancelled => {}
                }
            });
        }
        for strategy in alternates.iter().rev() {
            let (cancel, report) = (&cancel, &report);
            s.spawn(move |_| {
                // Restart-doubled budget slices, capped well below the
                // full budget: a probe either wins early or gets out of
                // the way.
                let mut slice = 1usize << 14;
                loop {
                    if cancel.load(Ordering::Relaxed) {
                        break;
                    }
                    let found = AtomicBool::new(false);
                    let nodes = AtomicUsize::new(0);
                    let ctx = StratCtx {
                        csp,
                        order: &strategy.order,
                        reverse_values: strategy.reverse_values,
                        split_depth: 0,
                        cancel,
                        found: &found,
                        nodes: &nodes,
                        budget: slice,
                    };
                    ksa_obs::perf_count(ksa_obs::PerfCounter::PortfolioRestartSlices, 1);
                    let mut assignment = vec![None; csp.views.len()];
                    let mut local = 0usize;
                    let out = pdfs(&ctx, 0, &mut assignment, &mut local);
                    ksa_obs::perf_count(ksa_obs::PerfCounter::PortfolioNodes, local as u64);
                    match out {
                        done @ (Branch::Solved(_) | Branch::Exhausted) => {
                            if report(done) {
                                ksa_obs::perf_count(
                                    ksa_obs::PerfCounter::PortfolioAlternateWins,
                                    1,
                                );
                            }
                            break;
                        }
                        Branch::Cancelled => break,
                        Branch::OutOfBudget => {
                            if slice > node_budget / 8 {
                                break;
                            }
                            slice *= 8;
                        }
                    }
                }
            });
        }
    });

    match winner.into_inner().expect("winner slot poisoned") {
        Some(Branch::Solved(assignment)) => Ok(instance.into_solvable(assignment)),
        Some(Branch::Exhausted) => Ok(Solvability::Unsolvable),
        Some(Branch::OutOfBudget | Branch::Cancelled) => {
            unreachable!("only completed strategies report")
        }
        None => {
            debug_assert!(canonical_out_of_budget.load(std::sync::atomic::Ordering::SeqCst));
            Ok(Solvability::Unknown)
        }
    }
}

#[cfg(test)]
mod multi_round_tests {
    use super::*;
    use ksa_graphs::closure::enumerate_closure;
    use ksa_graphs::families;
    use ksa_models::named;

    const EXECS: usize = 5_000_000;
    const NODES: usize = 50_000_000;

    fn closure_of(model: &ksa_models::ClosedAboveModel) -> Vec<ksa_graphs::Digraph> {
        let mut graphs = Vec::new();
        for g in model.generators() {
            graphs.extend(enumerate_closure(g, 1 << 12).unwrap());
        }
        graphs.sort();
        graphs.dedup();
        graphs
    }

    #[test]
    fn simple_ring_two_rounds_consensus() {
        // γ(C3²) = γ(K3) = 1: consensus solvable in two rounds on ↑C3
        // (Thm 6.3); and still impossible in one (Thm 5.1).
        let m = named::simple_ring(3).unwrap();
        let graphs = closure_of(&m);
        let one = decide_rounds_explicit(&graphs, 1, 1, 1, EXECS, NODES).unwrap();
        assert_eq!(one, Solvability::Unsolvable);
        let two = decide_rounds_explicit(&graphs, 1, 1, 2, EXECS, NODES).unwrap();
        assert!(two.is_solvable());
    }

    #[test]
    fn one_round_agrees_with_dedicated_decider() {
        // The explicit-path decider must agree with the factorized
        // one-round decider.
        let m = named::star_unions(3, 2).unwrap();
        let graphs = closure_of(&m);
        let explicit = decide_rounds_explicit(&graphs, 2, 2, 1, EXECS, NODES).unwrap();
        let direct = decide_one_round(&m, 2, 2, EXECS, NODES).unwrap();
        assert_eq!(explicit.is_solvable(), direct.is_solvable());
        assert!(explicit.is_solvable());
        let explicit1 = decide_rounds_explicit(&graphs, 1, 1, 1, EXECS, NODES).unwrap();
        let direct1 = decide_one_round(&m, 1, 1, EXECS, NODES).unwrap();
        assert_eq!(explicit1, Solvability::Unsolvable);
        assert_eq!(direct1, Solvability::Unsolvable);
    }

    #[test]
    fn kernel_stays_hard_with_more_rounds() {
        // Star unions: (n−s)-set agreement impossible at any round count
        // (Thm 6.13) — machine-checked at r = 2 for n = 3, s = 1.
        let m = named::star_unions(3, 1).unwrap();
        let graphs = closure_of(&m);
        let r2 = decide_rounds_explicit(&graphs, 2, 2, 2, EXECS, NODES).unwrap();
        assert_eq!(r2, Solvability::Unsolvable);
    }

    #[test]
    fn loops_only_never_agrees() {
        // The one-graph model with loops only: every process is isolated;
        // k < n impossible at any r, k = n trivially solvable.
        let g = families::clique(1).unwrap();
        let _ = g;
        let lonely = vec![ksa_graphs::Digraph::empty(3).unwrap()];
        for r in 1..=2 {
            assert_eq!(
                decide_rounds_explicit(&lonely, 2, 2, r, EXECS, NODES).unwrap(),
                Solvability::Unsolvable,
                "r = {r}"
            );
            assert!(decide_rounds_explicit(&lonely, 3, 3, r, EXECS, NODES)
                .unwrap()
                .is_solvable());
        }
    }

    #[test]
    fn budgets_and_parameters() {
        let g = vec![ksa_graphs::Digraph::complete(3).unwrap()];
        assert!(decide_rounds_explicit(&g, 0, 1, 1, EXECS, NODES).is_err());
        assert!(decide_rounds_explicit(&g, 1, 1, 0, EXECS, NODES).is_err());
        assert!(decide_rounds_explicit(&[], 1, 1, 1, EXECS, NODES).is_err());
        assert!(decide_rounds_explicit(&g, 1, 3, 1, 2, NODES).is_err());
    }
}
