//! Oblivious algorithms (Def 2.5).
//!
//! An oblivious algorithm's decision map sees only the **flat view**: the
//! set of `(process, initial value)` pairs the process has heard about —
//! no rounds, no provenance, no nesting. The trait below makes that a
//! type-level guarantee: implementations simply cannot inspect anything
//! else.
//!
//! The two algorithms of §3:
//!
//! * [`MinOfAll`] — decide the minimum value heard (Thm 3.4 / 3.7 / 6.9);
//! * [`MinOfDominatingSet`] — decide the minimum value among a fixed
//!   dominating set of the (known) generator (Thm 3.2 / 6.3).

use crate::task::Value;
use ksa_graphs::domination::minimum_dominating_set;
use ksa_graphs::{Digraph, ProcSet};
use ksa_topology::interpretation::FlatView;

/// An oblivious decision map (Def 2.5): from flat views to values.
pub trait ObliviousAlgorithm {
    /// Algorithm name for reports.
    fn name(&self) -> &'static str;

    /// Decides from the flat view of process `me`. The view always
    /// contains `me`'s own pair (self-loops), so it is never empty.
    fn decide(&self, me: usize, view: &FlatView<Value>) -> Value;
}

/// Decide the minimum value heard (the §3 "everybody sends, take the min"
/// algorithm).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinOfAll;

impl MinOfAll {
    /// Creates the algorithm.
    pub fn new() -> Self {
        MinOfAll
    }
}

impl ObliviousAlgorithm for MinOfAll {
    fn name(&self) -> &'static str {
        "min-of-all"
    }

    fn decide(&self, _me: usize, view: &FlatView<Value>) -> Value {
        view.iter()
            .map(|&(_, v)| v)
            .min()
            .expect("flat views contain at least the own pair")
    }
}

/// Decide the minimum value received **from a fixed dominating set** of the
/// generator graph (Thm 3.2's algorithm): on `↑G`, every process hears at
/// least one member of a dominating set of `G`, so at most `γ(G)` values
/// are decided.
///
/// Falls back to the overall minimum if no dominating-set member was heard
/// (which cannot happen on the intended model; the fallback keeps the map
/// total, as Def 2.5 requires).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinOfDominatingSet {
    dom: ProcSet,
}

impl MinOfDominatingSet {
    /// Builds the algorithm from a minimum dominating set of `g`, computed
    /// once up front ("since G is known, this minimum dominating set can
    /// be computed beforehand", Thm 3.2 proof).
    pub fn for_graph(g: &Digraph) -> Self {
        MinOfDominatingSet {
            dom: minimum_dominating_set(g).set,
        }
    }

    /// Builds the algorithm from an explicit process set.
    pub fn new(dom: ProcSet) -> Self {
        MinOfDominatingSet { dom }
    }

    /// The dominating set in use.
    pub fn dominating_set(&self) -> ProcSet {
        self.dom
    }
}

impl ObliviousAlgorithm for MinOfDominatingSet {
    fn name(&self) -> &'static str {
        "min-of-dominating-set"
    }

    fn decide(&self, _me: usize, view: &FlatView<Value>) -> Value {
        view.iter()
            .filter(|&&(q, _)| self.dom.contains(q))
            .map(|&(_, v)| v)
            .min()
            .unwrap_or_else(|| {
                view.iter()
                    .map(|&(_, v)| v)
                    .min()
                    .expect("flat views contain at least the own pair")
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksa_graphs::families;

    #[test]
    fn min_of_all_decides_minimum() {
        let a = MinOfAll::new();
        assert_eq!(a.decide(0, &vec![(0, 9), (1, 4), (2, 7)]), 4);
        assert_eq!(a.decide(2, &vec![(2, 3)]), 3);
        assert_eq!(a.name(), "min-of-all");
    }

    #[test]
    fn dominating_set_filters() {
        let alg = MinOfDominatingSet::new(ProcSet::from_iter([1usize]));
        // Value from p0 is smaller but p0 is not in the dominating set.
        assert_eq!(alg.decide(0, &vec![(0, 1), (1, 5)]), 5);
    }

    #[test]
    fn dominating_set_fallback() {
        let alg = MinOfDominatingSet::new(ProcSet::from_iter([7usize]));
        // Nobody from the set heard: fall back to overall min.
        assert_eq!(alg.decide(0, &vec![(0, 3), (1, 2)]), 2);
    }

    #[test]
    fn for_graph_uses_minimum_dominating_set() {
        let star = families::broadcast_star(5, 2).unwrap();
        let alg = MinOfDominatingSet::for_graph(&star);
        assert_eq!(alg.dominating_set(), ProcSet::singleton(2));
    }

    #[test]
    fn algorithms_are_oblivious_by_type() {
        // The decision depends only on the (proc, value) pairs: permuting
        // the *reception order* is impossible to express, and the same view
        // gives the same decision.
        let a = MinOfAll::new();
        let v1 = vec![(0, 5), (2, 1)];
        let v2 = vec![(0, 5), (2, 1)];
        assert_eq!(a.decide(0, &v1), a.decide(1, &v2));
    }
}
