//! Differential pinning of the pruned solvability search (propagation +
//! orbit symmetry breaking + the monotone no-good table, DESIGN.md §10)
//! against the untouched sequential oracle `decide_one_round_seq`, on
//! registry-sampled random models across `ksa-exec` pool sizes 1/2/8:
//!
//! * verdicts are bit-identical to the oracle at every pool size;
//! * every returned `DecisionMap` witness actually solves the model
//!   (replayed over all executions through `ksa_core::verify`);
//! * `decide_one_round_with_table` on a fresh table is a pure function
//!   of the instance, and seeding the table — with harvested facts, with
//!   reordered/duplicated facts, or with deliberately-useless keys —
//!   never changes a verdict and only shrinks the work counters;
//! * repeated runs on an oversubscribed pool are stable.

#![cfg(feature = "parallel")]

use ksa_core::solvability::{
    decide_one_round, decide_one_round_seq, decide_one_round_with_table, NoGoodTable, Solvability,
};
use ksa_core::verify::verify_decision_map;
use ksa_exec::ThreadPool;
use ksa_graphs::budget::RunBudget;
use ksa_models::registry;
use ksa_models::ClosedAboveModel;
use proptest::prelude::*;
use std::sync::OnceLock;

const EXECS: usize = 1 << 21;
const NODES: usize = 8_000_000;
/// Closure budget of the witness replay (n = 3: at most 2^6 supersets
/// per generator).
const GRAPHS: usize = 1 << 12;

/// The shared pools (1/2/8 workers), started once for the whole test
/// binary so proptest cases don't churn threads.
fn pools() -> &'static [ThreadPool] {
    static POOLS: OnceLock<Vec<ThreadPool>> = OnceLock::new();
    POOLS.get_or_init(|| [1, 2, 8].into_iter().map(ThreadPool::new).collect())
}

/// Registry-sampled random closed-above models (DESIGN.md §4.5). The
/// strategy value is the canonical spec string, so failures shrink to a
/// name that reproduces with `--models`.
fn random_model_name() -> impl Strategy<Value = String> {
    (0u64..=255, 0usize..3, 1usize..=2).prop_map(|(seed, p_idx, count)| {
        let p = ["0.25", "0.5", "0.75"][p_idx];
        format!("random{{n=3,p={p},seed={seed},count={count}}}")
    })
}

fn resolve(name: &str) -> ClosedAboveModel {
    registry::builtin()
        .resolve_closed_above(name, RunBudget::DEFAULT)
        .expect("random{n=3,…} resolves")
}

fn verdict_name(s: &Solvability) -> &'static str {
    match s {
        Solvability::Solvable(_) => "solvable",
        Solvability::Unsolvable => "unsolvable",
        Solvability::Unknown => "unknown",
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pruned_verdicts_match_the_oracle_at_every_pool_size(
        name in random_model_name(),
        k in 1usize..=2,
    ) {
        let model = resolve(&name);
        let oracle = decide_one_round_seq(&model, k, k, EXECS, NODES).expect("within budget");
        let mut first: Option<&'static str> = None;
        for pool in pools() {
            let pruned = pool
                .install(|| decide_one_round(&model, k, k, EXECS, NODES))
                .expect("within budget");
            match (&pruned, &oracle) {
                // At the node-budget boundary the pruned search may
                // decide what the oracle gives up on (never the
                // reverse of a decided verdict).
                (_, Solvability::Unknown) | (Solvability::Unknown, _) => {}
                _ => prop_assert_eq!(
                    verdict_name(&pruned),
                    verdict_name(&oracle),
                    "{} k={} pool={}",
                    name,
                    k,
                    pool.num_threads()
                ),
            }
            // Across pool sizes the verdict must be bit-identical.
            match first {
                None => first = Some(verdict_name(&pruned)),
                Some(f) => prop_assert_eq!(f, verdict_name(&pruned), "{} k={}", name, k),
            }
            // Any witness must genuinely solve the model.
            if let Solvability::Solvable(map) = &pruned {
                prop_assert!(!map.is_empty());
                let replay = verify_decision_map(&model, k, k, map, GRAPHS).expect("replay fits");
                prop_assert!(replay.is_valid(), "{} k={}: {:?}", name, k, replay);
            }
        }
    }

    #[test]
    fn with_table_runs_are_pure_and_seeding_is_monotone(
        name in random_model_name(),
        k in 1usize..=2,
    ) {
        let model = resolve(&name);
        // Two fresh-table runs: bit-identical verdicts (witness included)
        // and stats — the deterministic anchor of the differential suite.
        let fresh_a = NoGoodTable::new();
        let (v_a, s_a) =
            decide_one_round_with_table(&model, k, k, EXECS, NODES, &fresh_a).expect("in budget");
        let fresh_b = NoGoodTable::new();
        let (v_b, s_b) =
            decide_one_round_with_table(&model, k, k, EXECS, NODES, &fresh_b).expect("in budget");
        prop_assert_eq!(&v_a, &v_b, "{} k={}", name, k);
        prop_assert_eq!(s_a, s_b);

        // Seeding the harvested facts back (a "stale" table from an
        // earlier search of the same instance): verdict unchanged, work
        // counters only shrink.
        let seeded = NoGoodTable::new();
        let mut facts = fresh_a.snapshot();
        // Seed in a scrambled order with duplicates — table semantics
        // must be order- and multiplicity-independent.
        facts.reverse();
        for f in &facts {
            seeded.seed(f);
        }
        if let Some(first) = facts.first() {
            seeded.seed(first);
        }
        let (v_s, s_s) =
            decide_one_round_with_table(&model, k, k, EXECS, NODES, &seeded).expect("in budget");
        prop_assert_eq!(&v_a, &v_s, "{} k={} (seeded)", name, k);
        prop_assert!(s_s.nodes <= s_a.nodes, "{} k={}: {} > {}", name, k, s_s.nodes, s_a.nodes);
        prop_assert!(s_s.nogood_inserts <= s_a.nogood_inserts);

        // Deliberately-useless keys (view ids no instance reaches) can
        // never match a probed signature: verdict *and* node count are
        // bit-identical to the fresh run.
        let useless = NoGoodTable::new();
        for j in 0..64u32 {
            useless.seed(&[(1_000_000 + j, 0)]);
        }
        let before = useless.len();
        let (v_u, s_u) =
            decide_one_round_with_table(&model, k, k, EXECS, NODES, &useless).expect("in budget");
        prop_assert_eq!(&v_a, &v_u, "{} k={} (useless)", name, k);
        prop_assert_eq!(s_u.nodes, s_a.nodes);
        prop_assert_eq!(s_u.nogood_hits, 0u64);
        prop_assert_eq!(useless.len(), before + s_u.nogood_inserts as usize);
    }
}

/// The fixed boundary cases of the `solv` zoo, decided repeatedly on an
/// oversubscribed pool (8 workers regardless of the host's cores):
/// scheduling noise must never flip a verdict.
#[test]
fn oversubscribed_pool_runs_are_stable() {
    use ksa_models::named;
    let cases: Vec<(ClosedAboveModel, usize, Solvability)> = vec![
        (
            named::star_unions(3, 1).unwrap(),
            2,
            Solvability::Unsolvable,
        ),
        (
            named::symmetric_ring(3).unwrap(),
            1,
            Solvability::Unsolvable,
        ),
        (named::simple_ring(3).unwrap(), 1, Solvability::Unsolvable),
    ];
    let pool = ThreadPool::new(8);
    for (model, k, expected) in &cases {
        for round in 0..5 {
            let got = pool
                .install(|| decide_one_round(model, *k, *k, EXECS, NODES))
                .expect("within budget");
            assert_eq!(&got, expected, "k = {k}, round {round}");
        }
    }
    // Solvable boundary cases: the verdict kind is stable (the witness
    // map may legitimately differ between racing strategies).
    for (model, k) in [
        (named::star_unions(3, 1).unwrap(), 3),
        (named::symmetric_ring(3).unwrap(), 2),
    ] {
        for round in 0..5 {
            let got = pool
                .install(|| decide_one_round(&model, k, k, EXECS, NODES))
                .expect("within budget");
            assert!(got.is_solvable(), "k = {k}, round {round}");
        }
    }
}

/// An adversarially-seeded table must leave the *shared-table portfolio*
/// path untouched too: `decide_one_round` has its own internal table, so
/// this exercises the public path before/after heavy `with_table` churn
/// on the same instances.
#[test]
fn portfolio_verdicts_survive_table_churn() {
    use ksa_models::named;
    let model = named::star_unions(3, 1).unwrap();
    let before = decide_one_round(&model, 2, 2, EXECS, NODES).unwrap();
    // Churn: many seeded searches of both k values on shared tables.
    let table = NoGoodTable::new();
    for _ in 0..3 {
        let (v, _) = decide_one_round_with_table(&model, 2, 2, EXECS, NODES, &table).unwrap();
        assert_eq!(v, Solvability::Unsolvable);
    }
    let after = decide_one_round(&model, 2, 2, EXECS, NODES).unwrap();
    assert_eq!(before, after);
}
