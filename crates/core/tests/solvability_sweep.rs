//! Differential pinning of the incremental k-sweep
//! (`decide_one_round_sweep`, DESIGN.md §10.3) against from-scratch
//! per-k decisions across the n = 3 slice of the builtin zoo:
//!
//! * the sweep's verdict vector matches `decide_one_round(model, k, k, …)`
//!   for every `k` — seeding (witness lifts) and pruning (downward
//!   unsolvability) are theorems, not heuristics;
//! * the vector itself is monotone: solvable at `k` stays solvable at
//!   `k + 1`, unsolvable at `k` implies unsolvable below;
//! * every verdict — searched *or* seeded — carries a witness that
//!   replays cleanly through `ksa_core::verify::verify_decision_map`;
//! * the searched/seeded/pruned accounting covers the whole vector.

use ksa_core::solvability::{decide_one_round, decide_one_round_sweep, Solvability};
use ksa_core::verify::verify_decision_map;
use ksa_graphs::budget::RunBudget;
use ksa_models::registry;

const K_MAX: usize = 3;
const EXECS: usize = 1 << 21;
const NODES: usize = 8_000_000;
const GRAPHS: usize = 1 << 12;

/// The feasible (n = 3) slice of the zoo, by canonical registry name.
/// Kept explicit so a failure names the exact spec to replay.
const ZOO: &[&str] = &[
    "stars{n=3,s=1}",
    "stars{n=3,s=2}",
    "kernel{n=3}",
    "ring{n=3}",
    "ring{n=3,sym}",
    "tournament{n=3}",
    "path{n=3}",
    "tree{n=3}",
    "random{n=3,p=0.25,seed=1,count=2}",
    "random{n=3,p=0.5,seed=3,count=3}",
    "random{n=3,p=0.75,seed=6,count=2}",
];

fn kind(v: &Solvability) -> &'static str {
    match v {
        Solvability::Solvable(_) => "solvable",
        Solvability::Unsolvable => "unsolvable",
        Solvability::Unknown => "unknown",
    }
}

#[test]
fn sweep_matches_from_scratch_decisions_across_the_zoo() {
    let reg = registry::builtin();
    for name in ZOO {
        let model = reg
            .resolve_closed_above(name, RunBudget::DEFAULT)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let sweep = decide_one_round_sweep(&model, K_MAX, EXECS, NODES)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(sweep.verdicts.len(), K_MAX, "{name}");
        assert_eq!(
            sweep.searched + sweep.seeded + sweep.pruned,
            K_MAX,
            "{name}: accounting gap ({sweep:?})"
        );
        for k in 1..=K_MAX {
            let scratch = decide_one_round(&model, k, k, EXECS, NODES)
                .unwrap_or_else(|e| panic!("{name} k={k}: {e}"));
            assert_eq!(
                kind(&sweep.verdicts[k - 1]),
                kind(&scratch),
                "{name} k={k}: sweep disagrees with from-scratch"
            );
        }
    }
}

#[test]
fn sweep_vectors_are_monotone() {
    let reg = registry::builtin();
    for name in ZOO {
        let model = reg.resolve_closed_above(name, RunBudget::DEFAULT).unwrap();
        let sweep = decide_one_round_sweep(&model, K_MAX, EXECS, NODES).unwrap();
        for k in 1..K_MAX {
            let below = &sweep.verdicts[k - 1];
            let above = &sweep.verdicts[k];
            assert!(
                !(below.is_solvable() && matches!(above, Solvability::Unsolvable)),
                "{name}: solvable at k={k} but unsolvable at k={}",
                k + 1
            );
        }
    }
}

#[test]
fn seeded_witnesses_replay_as_genuine_algorithms() {
    // Every Solvable entry of the sweep — including the ones filled by
    // witness lifting rather than search — must carry a map that solves
    // k-set agreement on the model itself.
    let reg = registry::builtin();
    for name in ZOO {
        let model = reg.resolve_closed_above(name, RunBudget::DEFAULT).unwrap();
        let sweep = decide_one_round_sweep(&model, K_MAX, EXECS, NODES).unwrap();
        for k in 1..=K_MAX {
            if let Solvability::Solvable(map) = &sweep.verdicts[k - 1] {
                let rep = verify_decision_map(&model, k, k, map, GRAPHS)
                    .unwrap_or_else(|e| panic!("{name} k={k}: {e}"));
                assert!(rep.is_valid(), "{name} k={k}: {rep:?}");
            }
        }
    }
}

#[test]
fn sweep_rejects_zero_k_max() {
    let reg = registry::builtin();
    let model = reg
        .resolve_closed_above("ring{n=3}", RunBudget::DEFAULT)
        .unwrap();
    assert!(decide_one_round_sweep(&model, 0, EXECS, NODES).is_err());
}
