//! Property tests cross-checking the parallel portfolio solvability
//! search against the sequential reference on **randomized** small
//! models — the determinism contract of the `parallel` feature: same
//! verdict, bit-identical, at any thread count and for any portfolio
//! winner.

use ksa_core::solvability::{decide_one_round, decide_one_round_seq, Solvability};
use ksa_graphs::Digraph;
use ksa_models::ClosedAboveModel;
use proptest::prelude::*;

const EXECS: usize = 1 << 21;
// Large enough that almost every sampled instance is decided outright,
// small enough that the (deterministically re-sampled) heavy-tail
// instances stay interactive — at the budget boundary verdicts are
// allowed to differ (see below), so correctness does not depend on it.
const NODES: usize = 8_000_000;

/// A random digraph on 3 processes (self-loops are implicit).
fn digraph3() -> impl Strategy<Value = Digraph> {
    prop::collection::vec(any::<bool>(), 6).prop_map(|edges| {
        let mut g = Digraph::empty(3).expect("valid n");
        let mut bit = 0;
        for u in 0..3 {
            for v in 0..3 {
                if u != v {
                    if edges[bit] {
                        g.add_edge(u, v).expect("in range");
                    }
                    bit += 1;
                }
            }
        }
        g
    })
}

/// A closed-above model from one or two random generators.
fn model3() -> impl Strategy<Value = ClosedAboveModel> {
    prop::collection::vec(digraph3(), 1..=2)
        .prop_map(|gens| ClosedAboveModel::new(gens).expect("non-empty generators"))
}

fn verdict_name(s: &Solvability) -> &'static str {
    match s {
        Solvability::Solvable(_) => "solvable",
        Solvability::Unsolvable => "unsolvable",
        Solvability::Unknown => "unknown",
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn portfolio_verdicts_match_sequential(model in model3(), k in 1usize..=2) {
        let par = decide_one_round(&model, k, k, EXECS, NODES).expect("within budget");
        let seq = decide_one_round_seq(&model, k, k, EXECS, NODES).expect("within budget");
        match (&par, &seq) {
            // `Unknown` marks a node-budget boundary: there the portfolio
            // may legitimately out-search (or under-search) the canonical
            // sequential ordering. Decided verdicts, however, must never
            // disagree — a Solvable/Unsolvable split would be a
            // soundness bug in one of the searches.
            (Solvability::Unknown, _) | (_, Solvability::Unknown) => {}
            _ => prop_assert_eq!(
                verdict_name(&par),
                verdict_name(&seq),
                "model {:?} k {}",
                model,
                k
            ),
        }
        // Any witness must be a *complete* map over the same view set.
        if let (Solvability::Solvable(a), Solvability::Solvable(b)) = (&par, &seq) {
            prop_assert_eq!(a.len(), b.len());
            prop_assert!(!a.is_empty());
        }
    }

    #[test]
    fn repeated_parallel_runs_agree(model in model3(), k in 1usize..=2) {
        // Scheduling noise must never flip a verdict run over run.
        let first = decide_one_round(&model, k, k, EXECS, NODES).expect("within budget");
        for _ in 0..3 {
            let again = decide_one_round(&model, k, k, EXECS, NODES).expect("within budget");
            prop_assert_eq!(verdict_name(&again), verdict_name(&first));
        }
    }
}
