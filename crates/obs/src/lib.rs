//! Two-tier instrumentation for the whole workspace: deterministic work
//! counters, explicitly nondeterministic perf stats, and a span layer
//! that exports chrome://tracing-compatible trace-event JSON.
//!
//! # The two tiers
//!
//! **Deterministic work counters** ([`Counter`]) measure *what* the
//! pipeline computed: facets enumerated, views interned, boundary rows
//! assembled, GF(2) ranks reduced, CSP verdicts produced, budget
//! admissions, registry materializations. Every counted site performs a
//! thread-count-invariant amount of work (the determinism contract,
//! DESIGN.md §4), so the totals are **bit-identical at any
//! `KSA_THREADS`** — CI diffs them across pool sizes exactly like
//! experiment verdicts, which turns the profile into a correctness gate.
//!
//! **Perf stats** ([`PerfCounter`]) measure *how* the pool got it done:
//! steals, parks, spawns, portfolio nodes explored before cancellation,
//! restart slices, redundant racer builds. These depend on scheduling
//! and live in a separate namespace that CI strips before diffing.
//!
//! # Sharding and merging
//!
//! Counts land in per-thread shards (one cache line of relaxed atomics
//! per thread, registered on first use) so the hot path is a single
//! uncontended `fetch_add`. A [`snapshot`] merges shards in their
//! registration order; since merging is integer addition, the totals are
//! independent of both the merge order and how work was distributed —
//! which is exactly why the deterministic tier survives work stealing.
//! Reads use relaxed ordering: callers snapshot after joining the work
//! they want counted, and the join's synchronization publishes the
//! increments.
//!
//! # Feature gating
//!
//! With the `enabled` feature off, every entry point is a no-op that the
//! optimizer deletes: counters vanish, [`span`] returns a unit guard and
//! never evaluates its name closure, [`snapshot`] returns empty tiers.
//! Downstream crates therefore call the API unconditionally.

use std::borrow::Cow;

/// The deterministic tier: work performed, invariant across
/// `KSA_THREADS` by the determinism contract.
///
/// Variant order is the canonical presentation order (JSON, reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Facets materialized into complexes (protocol rounds,
    /// pseudospheres, closed-above interpretations).
    FacetsEnumerated,
    /// Total simplexes closed into chain-complex arenas.
    FacesClosed,
    /// Distinct views interned into round/view tables.
    ViewsInterned,
    /// Sparse boundary rows assembled for rank reduction.
    BoundaryRows,
    /// Nonzeros across those boundary rows.
    BoundaryNnz,
    /// GF(2) rank reductions completed (sparse echelon + dense).
    RanksComputed,
    /// Connectivity scans that stopped before their requested cap.
    ConnectivityEarlyExits,
    /// CSP solvability verdicts produced (decided or Unknown).
    CspVerdicts,
    /// Symmetry-group order detected per CSP instance, summed (process
    /// automorphisms × value permutations). Detection runs once per
    /// instance before any racing starts, so it is schedule-invariant.
    CspSymmetries,
    /// Root branches pruned as non-lex-least orbit representatives.
    /// Computed from the instance alone (root propagation + first
    /// branch variable), before any strategy races — deterministic.
    CspOrbitRootPrunes,
    /// k-sweep verdicts derived by lifting a solvability certificate
    /// from k to k+1 (monotonicity) instead of searching.
    CspSweepSeeded,
    /// k-sweep verdicts derived from an impossibility proof at a higher
    /// k (monotonicity) instead of searching.
    CspSweepPruned,
    /// Budget admissions granted.
    BudgetAdmissions,
    /// Budget admissions refused.
    BudgetRejections,
    /// Registry resolutions through the materialization cache.
    RegistryLookups,
    /// Unique model materializations inserted into a registry cache.
    /// Cache hits are `RegistryLookups − RegistryMaterializations`;
    /// raw hit/miss counts would be racy (two concurrent first lookups
    /// both miss), the unique-insert count is not.
    RegistryMaterializations,
    /// Executions explored by the runtime checker.
    CheckerExecutions,
    /// Graph-layer domination/covering queries answered.
    DominationQueries,
    /// Machine-checkable certificates produced by `*_certified`
    /// producers (one per verdict, regardless of schedule).
    CertsEmitted,
    /// Certificates re-verified by the standalone `ksa-cert` checkers
    /// (one per check call, accept or reject).
    CertsChecked,
    /// Server cache lookups answered from a verified on-disk entry.
    /// Deterministic given the request sequence: a hit depends only on
    /// which keys were written before, never on scheduling.
    CacheHits,
    /// Server cache lookups that found no usable entry (absent, key
    /// mismatch, or quarantined — quarantines are additionally counted
    /// in the perf tier because *when* corruption is observed is not).
    CacheMisses,
    /// Server cache entries committed to disk (temp-file-then-rename).
    CacheWrites,
}

impl Counter {
    /// All counters, in presentation order.
    pub const ALL: [Counter; 23] = [
        Counter::FacetsEnumerated,
        Counter::FacesClosed,
        Counter::ViewsInterned,
        Counter::BoundaryRows,
        Counter::BoundaryNnz,
        Counter::RanksComputed,
        Counter::ConnectivityEarlyExits,
        Counter::CspVerdicts,
        Counter::CspSymmetries,
        Counter::CspOrbitRootPrunes,
        Counter::CspSweepSeeded,
        Counter::CspSweepPruned,
        Counter::BudgetAdmissions,
        Counter::BudgetRejections,
        Counter::RegistryLookups,
        Counter::RegistryMaterializations,
        Counter::CheckerExecutions,
        Counter::DominationQueries,
        Counter::CertsEmitted,
        Counter::CertsChecked,
        Counter::CacheHits,
        Counter::CacheMisses,
        Counter::CacheWrites,
    ];

    /// Stable snake_case name (JSON keys, report labels).
    pub fn name(self) -> &'static str {
        match self {
            Counter::FacetsEnumerated => "facets_enumerated",
            Counter::FacesClosed => "faces_closed",
            Counter::ViewsInterned => "views_interned",
            Counter::BoundaryRows => "boundary_rows",
            Counter::BoundaryNnz => "boundary_nnz",
            Counter::RanksComputed => "ranks_computed",
            Counter::ConnectivityEarlyExits => "connectivity_early_exits",
            Counter::CspVerdicts => "csp_verdicts",
            Counter::CspSymmetries => "csp_symmetries",
            Counter::CspOrbitRootPrunes => "csp_orbit_root_prunes",
            Counter::CspSweepSeeded => "csp_sweep_seeded",
            Counter::CspSweepPruned => "csp_sweep_pruned",
            Counter::BudgetAdmissions => "budget_admissions",
            Counter::BudgetRejections => "budget_rejections",
            Counter::RegistryLookups => "registry_lookups",
            Counter::RegistryMaterializations => "registry_materializations",
            Counter::CheckerExecutions => "checker_executions",
            Counter::DominationQueries => "domination_queries",
            Counter::CertsEmitted => "certs_emitted",
            Counter::CertsChecked => "certs_checked",
            Counter::CacheHits => "cache_hits",
            Counter::CacheMisses => "cache_misses",
            Counter::CacheWrites => "cache_writes",
        }
    }
}

/// The perf tier: scheduling-dependent statistics, explicitly **not**
/// deterministic across pool sizes (CI strips them before diffing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum PerfCounter {
    /// Jobs acquired from another worker's deque or the injector.
    ExecSteals,
    /// Times a worker parked waiting for work.
    ExecParks,
    /// Jobs made stealable (deque pushes + injector submissions).
    ExecSpawns,
    /// CSP decision nodes explored across all portfolio strategies
    /// (includes work thrown away at cancellation).
    PortfolioNodes,
    /// No-good table probes that hit a published dead subtree (work
    /// skipped). Which prunes fire depends on publication timing, so
    /// this is perf-tier by design — the *verdicts* they protect are
    /// not.
    NoGoodHits,
    /// Canonical dead-subtree signatures published into no-good tables
    /// (unique insertions).
    NoGoodInserts,
    /// Portfolio races won by the canonical strategy.
    PortfolioCanonicalWins,
    /// Portfolio races won by an alternate strategy.
    PortfolioAlternateWins,
    /// Registry materializations discarded because a concurrent racer
    /// already populated the cache entry.
    RegistryRedundantBuilds,
    /// Corrupt or truncated server cache entries quarantined on read
    /// (renamed aside, then transparently recomputed).
    CacheCorruptionsQuarantined,
    /// Requests refused with `Overloaded` because the server's bounded
    /// queue was full.
    RequestsShed,
    /// Deadlines observed tripping a `CancelToken` (counted once at
    /// the live→deadline transition; *when* a checkpoint notices is
    /// scheduling-dependent).
    DeadlinesTripped,
    /// Worker tasks that panicked and were isolated by `catch_unwind`
    /// into a structured error response.
    RequestsPanicked,
}

impl PerfCounter {
    /// All perf counters, in presentation order.
    pub const ALL: [PerfCounter; 13] = [
        PerfCounter::ExecSteals,
        PerfCounter::ExecParks,
        PerfCounter::ExecSpawns,
        PerfCounter::PortfolioNodes,
        PerfCounter::NoGoodHits,
        PerfCounter::NoGoodInserts,
        PerfCounter::PortfolioCanonicalWins,
        PerfCounter::PortfolioAlternateWins,
        PerfCounter::RegistryRedundantBuilds,
        PerfCounter::CacheCorruptionsQuarantined,
        PerfCounter::RequestsShed,
        PerfCounter::DeadlinesTripped,
        PerfCounter::RequestsPanicked,
    ];

    /// Stable snake_case name (JSON keys, report labels).
    pub fn name(self) -> &'static str {
        match self {
            PerfCounter::ExecSteals => "exec_steals",
            PerfCounter::ExecParks => "exec_parks",
            PerfCounter::ExecSpawns => "exec_spawns",
            PerfCounter::PortfolioNodes => "portfolio_nodes",
            PerfCounter::NoGoodHits => "nogood_hits",
            PerfCounter::NoGoodInserts => "nogood_inserts",
            PerfCounter::PortfolioCanonicalWins => "portfolio_canonical_wins",
            PerfCounter::PortfolioAlternateWins => "portfolio_alternate_wins",
            PerfCounter::RegistryRedundantBuilds => "registry_redundant_builds",
            PerfCounter::CacheCorruptionsQuarantined => "cache_corruptions_quarantined",
            PerfCounter::RequestsShed => "requests_shed",
            PerfCounter::DeadlinesTripped => "deadlines_tripped",
            PerfCounter::RequestsPanicked => "requests_panicked",
        }
    }
}

/// Per-worker perf breakdown (shards whose thread was a pool worker).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPerf {
    /// The worker thread's name (`ksa-exec-N`).
    pub label: String,
    /// Jobs it stole (sibling deques + injector).
    pub steals: u64,
    /// Times it parked.
    pub parks: u64,
    /// Jobs it made stealable.
    pub spawns: u64,
}

/// A merged view of every shard at one instant.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Deterministic tier, in [`Counter::ALL`] order.
    pub det: Vec<(&'static str, u64)>,
    /// Perf tier, in [`PerfCounter::ALL`] order.
    pub perf: Vec<(&'static str, u64)>,
    /// Per-worker perf rows, sorted by worker label.
    pub workers: Vec<WorkerPerf>,
}

impl MetricsSnapshot {
    /// The deterministic-tier value for `c` (0 when the tier is empty,
    /// i.e. instrumentation compiled out).
    pub fn det_value(&self, c: Counter) -> u64 {
        self.det
            .iter()
            .find(|(name, _)| *name == c.name())
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// Deterministic tier as a delta against an `earlier` snapshot —
    /// how tests scope counts to one workload on shared global state.
    pub fn det_delta(&self, earlier: &MetricsSnapshot) -> Vec<(&'static str, u64)> {
        self.det
            .iter()
            .map(|&(name, v)| (name, v - earlier.det_value_by_name(name)))
            .collect()
    }

    fn det_value_by_name(&self, name: &str) -> u64 {
        self.det
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }
}

#[cfg(feature = "enabled")]
mod imp {
    use super::{Counter, MetricsSnapshot, PerfCounter, WorkerPerf};
    use std::borrow::Cow;
    use std::cell::Cell;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Arc, Mutex, OnceLock};
    use std::time::Instant;

    const DET: usize = Counter::ALL.len();
    const PERF: usize = PerfCounter::ALL.len();

    /// One thread's counters. Shards are append-only in a global list:
    /// a dead thread's totals must keep contributing to snapshots.
    struct Shard {
        label: String,
        det: [AtomicU64; DET],
        perf: [AtomicU64; PERF],
    }

    fn shards() -> &'static Mutex<Vec<Arc<Shard>>> {
        static SHARDS: OnceLock<Mutex<Vec<Arc<Shard>>>> = OnceLock::new();
        SHARDS.get_or_init(|| Mutex::new(Vec::new()))
    }

    thread_local! {
        static LOCAL: OnceLock<Arc<Shard>> = const { OnceLock::new() };
    }

    fn with_local<R>(f: impl FnOnce(&Shard) -> R) -> R {
        LOCAL.with(|cell| {
            let shard = cell.get_or_init(|| {
                let shard = Arc::new(Shard {
                    label: std::thread::current().name().unwrap_or("?").to_string(),
                    det: std::array::from_fn(|_| AtomicU64::new(0)),
                    perf: std::array::from_fn(|_| AtomicU64::new(0)),
                });
                shards()
                    .lock()
                    .expect("obs shards")
                    .push(Arc::clone(&shard));
                shard
            });
            f(shard)
        })
    }

    pub fn count(c: Counter, n: u64) {
        if n != 0 {
            with_local(|s| s.det[c as usize].fetch_add(n, Ordering::Relaxed));
        }
    }

    pub fn perf_count(p: PerfCounter, n: u64) {
        if n != 0 {
            with_local(|s| s.perf[p as usize].fetch_add(n, Ordering::Relaxed));
        }
    }

    pub fn snapshot() -> MetricsSnapshot {
        let shards = shards().lock().expect("obs shards");
        let mut det = [0u64; DET];
        let mut perf = [0u64; PERF];
        let mut workers = Vec::new();
        for shard in shards.iter() {
            for (i, slot) in shard.det.iter().enumerate() {
                det[i] += slot.load(Ordering::Relaxed);
            }
            for (i, slot) in shard.perf.iter().enumerate() {
                perf[i] += slot.load(Ordering::Relaxed);
            }
            if shard.label.starts_with("ksa-exec-") {
                workers.push(WorkerPerf {
                    label: shard.label.clone(),
                    steals: shard.perf[PerfCounter::ExecSteals as usize].load(Ordering::Relaxed),
                    parks: shard.perf[PerfCounter::ExecParks as usize].load(Ordering::Relaxed),
                    spawns: shard.perf[PerfCounter::ExecSpawns as usize].load(Ordering::Relaxed),
                });
            }
        }
        workers.sort_by(|a, b| a.label.cmp(&b.label));
        // Several workers may have indexed shards across different pools
        // (tests spin up throwaway pools); merge rows sharing a label.
        workers.dedup_by(|b, a| {
            if a.label == b.label {
                a.steals += b.steals;
                a.parks += b.parks;
                a.spawns += b.spawns;
                true
            } else {
                false
            }
        });
        MetricsSnapshot {
            det: Counter::ALL
                .iter()
                .map(|&c| (c.name(), det[c as usize]))
                .collect(),
            perf: PerfCounter::ALL
                .iter()
                .map(|&p| (p.name(), perf[p as usize]))
                .collect(),
            workers,
        }
    }

    // ---- span layer / trace export -------------------------------------

    struct TraceEvent {
        name: Cow<'static, str>,
        cat: &'static str,
        tid: u32,
        ts_ns: u64,
        dur_ns: u64,
        args: Vec<(&'static str, u64)>,
    }

    struct TraceShared {
        enabled: AtomicBool,
        state: Mutex<TraceState>,
    }

    struct TraceState {
        epoch: Instant,
        events: Vec<TraceEvent>,
        threads: Vec<(u32, String)>,
        next_tid: u32,
    }

    fn trace_shared() -> &'static TraceShared {
        static TRACE: OnceLock<TraceShared> = OnceLock::new();
        TRACE.get_or_init(|| TraceShared {
            enabled: AtomicBool::new(false),
            state: Mutex::new(TraceState {
                epoch: Instant::now(),
                events: Vec::new(),
                threads: Vec::new(),
                next_tid: 0,
            }),
        })
    }

    thread_local! {
        static TID: Cell<u32> = const { Cell::new(u32::MAX) };
    }

    fn current_tid(state: &mut TraceState) -> u32 {
        TID.with(|cell| {
            let mut tid = cell.get();
            if tid == u32::MAX {
                tid = state.next_tid;
                state.next_tid += 1;
                state.threads.push((
                    tid,
                    std::thread::current().name().unwrap_or("?").to_string(),
                ));
                cell.set(tid);
            }
            tid
        })
    }

    pub fn trace_enabled() -> bool {
        trace_shared().enabled.load(Ordering::Relaxed)
    }

    pub fn trace_start() {
        let shared = trace_shared();
        {
            let mut state = shared.state.lock().expect("obs trace");
            state.epoch = Instant::now();
            state.events.clear();
        }
        shared.enabled.store(true, Ordering::SeqCst);
    }

    pub fn trace_stop() -> String {
        let shared = trace_shared();
        shared.enabled.store(false, Ordering::SeqCst);
        let state = shared.state.lock().expect("obs trace");
        render_trace(&state)
    }

    pub struct SpanGuard {
        open: Option<OpenSpan>,
    }

    struct OpenSpan {
        name: Cow<'static, str>,
        cat: &'static str,
        start: Instant,
        args: Vec<(&'static str, u64)>,
    }

    impl SpanGuard {
        pub fn arg(mut self, key: &'static str, value: u64) -> Self {
            if let Some(open) = self.open.as_mut() {
                open.args.push((key, value));
            }
            self
        }
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            let Some(open) = self.open.take() else {
                return;
            };
            let end = Instant::now();
            let shared = trace_shared();
            // Tracing may have stopped while the span was open; keep the
            // event only if the collector is still live.
            if !shared.enabled.load(Ordering::Relaxed) {
                return;
            }
            let mut state = shared.state.lock().expect("obs trace");
            let tid = current_tid(&mut state);
            let ts_ns = open.start.saturating_duration_since(state.epoch).as_nanos() as u64;
            let dur_ns = end.saturating_duration_since(open.start).as_nanos() as u64;
            state.events.push(TraceEvent {
                name: open.name,
                cat: open.cat,
                tid,
                ts_ns,
                dur_ns,
                args: open.args,
            });
        }
    }

    pub fn span<N>(cat: &'static str, name: impl FnOnce() -> N) -> SpanGuard
    where
        N: Into<Cow<'static, str>>,
    {
        if !trace_enabled() {
            return SpanGuard { open: None };
        }
        SpanGuard {
            open: Some(OpenSpan {
                name: name().into(),
                cat,
                start: Instant::now(),
                args: Vec::new(),
            }),
        }
    }

    fn render_trace(state: &TraceState) -> String {
        let mut out = String::with_capacity(256 + state.events.len() * 128);
        out.push_str("{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [");
        let mut first = true;
        for (tid, name) in &state.threads {
            push_event_sep(&mut out, &mut first);
            out.push_str(&format!(
                "{{\"ph\": \"M\", \"pid\": 1, \"tid\": {tid}, \"name\": \"thread_name\", \
                 \"args\": {{\"name\": \"{}\"}}}}",
                escape(name)
            ));
        }
        for ev in &state.events {
            push_event_sep(&mut out, &mut first);
            out.push_str(&format!(
                "{{\"ph\": \"X\", \"pid\": 1, \"tid\": {}, \"name\": \"{}\", \"cat\": \"{}\", \
                 \"ts\": {:.3}, \"dur\": {:.3}",
                ev.tid,
                escape(&ev.name),
                escape(ev.cat),
                ev.ts_ns as f64 / 1_000.0,
                ev.dur_ns as f64 / 1_000.0,
            ));
            if !ev.args.is_empty() {
                out.push_str(", \"args\": {");
                for (i, (key, value)) in ev.args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!("\"{}\": {value}", escape(key)));
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    fn push_event_sep(out: &mut String, first: &mut bool) {
        if *first {
            *first = false;
        } else {
            out.push(',');
        }
        out.push_str("\n    ");
    }

    fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    use super::{Counter, MetricsSnapshot, PerfCounter};
    use std::borrow::Cow;

    #[inline(always)]
    pub fn count(_c: Counter, _n: u64) {}

    #[inline(always)]
    pub fn perf_count(_p: PerfCounter, _n: u64) {}

    pub fn snapshot() -> MetricsSnapshot {
        MetricsSnapshot::default()
    }

    #[inline(always)]
    pub fn trace_enabled() -> bool {
        false
    }

    pub fn trace_start() {}

    pub fn trace_stop() -> String {
        "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n  ]\n}\n".to_string()
    }

    /// Unit guard: the span was compiled out.
    pub struct SpanGuard;

    impl SpanGuard {
        pub fn arg(self, _key: &'static str, _value: u64) -> Self {
            self
        }
    }

    #[inline(always)]
    pub fn span<N>(_cat: &'static str, _name: impl FnOnce() -> N) -> SpanGuard
    where
        N: Into<Cow<'static, str>>,
    {
        SpanGuard
    }
}

pub use imp::SpanGuard;

/// Adds `n` to a deterministic-tier counter on this thread's shard.
///
/// Call sites must perform a thread-count-invariant amount of counted
/// work (see the tier contract in the module docs) — that, not this
/// function, is what makes [`snapshot`] totals deterministic.
#[inline]
pub fn count(c: Counter, n: u64) {
    imp::count(c, n);
}

/// Adds `n` to a perf-tier counter on this thread's shard.
#[inline]
pub fn perf_count(p: PerfCounter, n: u64) {
    imp::perf_count(p, n);
}

/// Merges every shard into one [`MetricsSnapshot`]. Counts from work
/// that was joined before this call are fully visible.
pub fn snapshot() -> MetricsSnapshot {
    imp::snapshot()
}

/// Whether the trace collector is currently recording spans.
#[inline]
pub fn trace_enabled() -> bool {
    imp::trace_enabled()
}

/// Starts (or restarts) span collection: clears the buffer and re-bases
/// timestamps at "now".
pub fn trace_start() {
    imp::trace_start()
}

/// Stops span collection and renders the buffer as chrome://tracing
/// trace-event JSON (`{"traceEvents": [...]}` — load it at
/// `chrome://tracing` or <https://ui.perfetto.dev>). Spans still open
/// when collection stops are discarded.
pub fn trace_stop() -> String {
    imp::trace_stop()
}

/// Opens a duration span; the returned guard records the span when
/// dropped. The name closure is only evaluated while a trace is being
/// collected, so `span("bench", || format!("experiment:{id}"))` costs
/// one atomic load when tracing is off.
#[inline]
pub fn span<N>(cat: &'static str, name: impl FnOnce() -> N) -> SpanGuard
where
    N: Into<Cow<'static, str>>,
{
    imp::span(cat, name)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Counter state is process-global, so tests measure deltas.

    #[test]
    fn counts_accumulate_and_snapshot_merges() {
        let before = snapshot();
        count(Counter::BoundaryRows, 3);
        count(Counter::BoundaryRows, 4);
        count(Counter::RanksComputed, 0); // no-op, not a panic
        perf_count(PerfCounter::ExecSteals, 2);
        let after = snapshot();
        if cfg!(feature = "enabled") {
            let delta = after.det_delta(&before);
            let rows = delta
                .iter()
                .find(|(n, _)| *n == "boundary_rows")
                .map(|&(_, v)| v);
            assert_eq!(rows, Some(7));
            assert_eq!(after.det.len(), Counter::ALL.len());
            assert_eq!(after.perf.len(), PerfCounter::ALL.len());
        } else {
            assert!(after.det.is_empty());
            assert!(after.perf.is_empty());
        }
    }

    #[test]
    fn cross_thread_counts_merge_into_one_total() {
        let before = snapshot().det_value(Counter::FacesClosed);
        let handles: Vec<_> = (0..4)
            .map(|_| std::thread::spawn(|| count(Counter::FacesClosed, 5)))
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let delta = snapshot().det_value(Counter::FacesClosed) - before;
        if cfg!(feature = "enabled") {
            assert_eq!(delta, 20);
        } else {
            assert_eq!(delta, 0);
        }
    }

    #[test]
    fn names_are_unique_and_ordered() {
        let names: Vec<_> = Counter::ALL.iter().map(|c| c.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate counter name");
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i, "ALL order must match discriminant order");
        }
        for (i, p) in PerfCounter::ALL.iter().enumerate() {
            assert_eq!(*p as usize, i, "ALL order must match discriminant order");
        }
    }

    #[test]
    fn spans_export_wellformed_trace_json() {
        // The trace collector is global; this test owns it start-to-stop.
        trace_start();
        {
            let _outer = span("test", || "outer").arg("k", 2);
            let _inner = span("test", || format!("inner:{}", 7));
        }
        let json = trace_stop();
        if cfg!(feature = "enabled") {
            assert!(json.contains("\"traceEvents\""));
            assert!(json.contains("\"name\": \"outer\""));
            assert!(json.contains("\"name\": \"inner:7\""));
            assert!(json.contains("\"args\": {\"k\": 2}"));
            assert!(json.contains("\"ph\": \"M\""), "thread metadata present");
        } else {
            assert!(json.contains("\"traceEvents\""));
        }
        // Spans opened while tracing is off are free and recordless.
        let _ = span("test", || -> &'static str { panic!("name must be lazy") });
    }
}
