//! Regression lock on the quickstart numbers from `src/lib.rs`.
//!
//! The crate-level doctest advertises exact values for the symmetric
//! union-of-2-stars model on 5 processes (Thm 6.13 of the paper). This
//! test pins those numbers as an ordinary integration test, so the
//! doctest can never drift from reality without CI noticing — and the
//! numbers stay covered even in doctest-skipping environments.

use kset_agreement::prelude::*;

#[test]
fn thm_6_13_star_unions_quickstart_numbers() {
    // The symmetric union-of-2-stars model on 5 processes (Thm 6.13):
    // (n − s + 1) = 4-set agreement solvable, (n − s) = 3 impossible.
    let model = models::named::star_unions(5, 2).expect("valid model");
    let report = BoundsReport::compute(&model, 1).expect("computable");
    assert_eq!(report.best_upper().expect("upper bound exists").k, 4);
    assert_eq!(
        report
            .best_lower()
            .expect("lower bound exists")
            .impossible_k,
        3
    );
    assert!(report.is_tight());
}

#[test]
fn thm_6_13_flood_and_min_achieves_the_bound() {
    // …and the flood-and-min algorithm actually achieves it: worst case
    // exactly 4 distinct decisions over the full exhaustive check.
    let model = models::named::star_unions(5, 2).expect("valid model");
    let check = runtime::checker::check_exhaustive(&MinOfAll::new(), &model, 5, 1, 100_000_000)
        .expect("within budget");
    assert_eq!(check.worst_distinct, 4);
    assert!(check.validity_ok);
    assert!(check.executions > 0);
}
