//! Every in-text numerical claim of the paper, as a test.
//!
//! The paper has no numeric tables; its worked examples play that role.
//! Each test names the section it reproduces. EXPERIMENTS.md mirrors this
//! file.

use kset_agreement::graphs::covering::{covering_number, covering_number_of_set};
use kset_agreement::graphs::dist_domination::distributed_domination_number;
use kset_agreement::graphs::domination::domination_number;
use kset_agreement::graphs::equal_domination::{
    equal_domination_number, equal_domination_number_of_set,
};
use kset_agreement::graphs::max_covering::{
    max_covering_coefficient_with, max_covering_number_with,
};
use kset_agreement::graphs::perm::symmetric_closure;
use kset_agreement::graphs::{families, ProcSet};
use kset_agreement::prelude::*;

/// §3.1 + Thm 3.2: the domination number drives the simple-model upper
/// bound; for a broadcast star it is 1.
#[test]
fn section_3_1_star_domination() {
    for n in 2..8 {
        let star = families::broadcast_star(n, 0).unwrap();
        assert_eq!(domination_number(&star), 1);
    }
}

/// §3.2, Figure 1 (first model): "every covering number of a star" is the
/// degenerate one (with the literal Def 3.6 and self-loops, cov_i = i) and
/// "its equal-domination number equals n". Consequently the covering bound
/// never beats γ_eq: i + (n − cov_i) = n ≥ γ_eq = n.
#[test]
fn section_3_2_star_model_numbers() {
    let n = 4;
    let sym = symmetric_closure(&[families::fig1_star()]).unwrap();
    assert_eq!(equal_domination_number_of_set(&sym).unwrap(), n);
    for i in 1..n {
        let cov = covering_number_of_set(&sym, i).unwrap();
        assert_eq!(cov, i, "cov_{i}");
        assert!(i + (n - cov) >= n);
    }
}

/// §3.2, Figure 1 (second model): cov_2(S) = 3 and γ_eq(S) = 4, so the
/// covering bound gives 3-set agreement while γ_eq only gives 4-set.
#[test]
fn section_3_2_second_model_numbers() {
    let sym = symmetric_closure(&[families::fig1_second_graph()]).unwrap();
    assert_eq!(covering_number_of_set(&sym, 2).unwrap(), 3);
    assert_eq!(equal_domination_number_of_set(&sym).unwrap(), 4);
    // n − cov_2 < γ_eq − i: the paper's improvement inequality at i = 2.
    let (n, i) = (4usize, 2usize);
    let cov2 = covering_number_of_set(&sym, i).unwrap();
    let geq = equal_domination_number_of_set(&sym).unwrap();
    assert!(n - cov2 < geq - i, "the improvement criterion holds");
    let model = models::named::fig1_second_model().unwrap();
    let report = BoundsReport::compute(&model, 1).unwrap();
    assert_eq!(report.best_upper().unwrap().k, 3);
}

/// Figure 2: the uninterpreted simplex of the 3-process example.
#[test]
fn figure_2_uninterpreted_simplex() {
    use kset_agreement::topology::uninterpreted::uninterpreted_simplex;
    let s = uninterpreted_simplex(&families::fig2_graph());
    assert_eq!(s.view_of(0), Some(&ProcSet::from_iter([0usize, 2])));
    assert_eq!(s.view_of(1), Some(&ProcSet::from_iter([0usize, 1])));
    assert_eq!(s.view_of(2), Some(&ProcSet::from_iter([2usize])));
}

/// Figure 3: the pseudosphere on P1..P3 with views {v1,v2},{v1,v2},{v} has
/// 4 facets and is (n−2)-connected (Lemma 4.7).
#[test]
fn figure_3_pseudosphere() {
    use kset_agreement::topology::connectivity::is_k_connected;
    use kset_agreement::topology::pseudosphere::Pseudosphere;
    let ps = Pseudosphere::new(vec![(0, vec![1u32, 2]), (1, vec![1, 2]), (2, vec![9])]).unwrap();
    let c = ps.to_complex();
    assert_eq!(c.facet_count(), 4);
    assert!(is_k_connected(&c, 1));
}

/// Figure 4: the shellable and the non-shellable exemplar.
#[test]
fn figure_4_shellability() {
    use kset_agreement::topology::complex::Complex;
    use kset_agreement::topology::shelling::is_shellable;
    use kset_agreement::topology::simplex::{Simplex, Vertex};
    let tri = |a: usize, b: usize, c: usize| {
        Simplex::new(vec![
            Vertex::new(a, 0u32),
            Vertex::new(b, 0),
            Vertex::new(c, 0),
        ])
        .unwrap()
    };
    let fig4a = Complex::from_facets(vec![tri(0, 1, 2), tri(0, 2, 3)]);
    assert!(is_shellable(&fig4a).unwrap());
    let fig4b = Complex::from_facets(vec![tri(0, 1, 2), tri(2, 3, 4)]);
    assert!(!is_shellable(&fig4b).unwrap());
}

/// Lemma 4.6: pseudospheres intersect component-wise.
#[test]
fn lemma_4_6_intersection() {
    use kset_agreement::topology::pseudosphere::Pseudosphere;
    let a = Pseudosphere::new(vec![(0, vec![1u32, 2]), (1, vec![3, 4]), (2, vec![5])]).unwrap();
    let b = Pseudosphere::new(vec![(0, vec![2u32, 9]), (1, vec![4]), (2, vec![5, 6])]).unwrap();
    assert_eq!(
        a.intersect(&b).to_complex(),
        a.to_complex().intersection(&b.to_complex())
    );
}

/// Thm 4.12: the uninterpreted complex of every closed-above model in the
/// zoo is (n−2)-connected (homologically verified).
#[test]
fn theorem_4_12_connectivity() {
    use kset_agreement::topology::connectivity::is_k_connected;
    use kset_agreement::topology::uninterpreted::closed_above_uninterpreted_complex;
    let zoo: Vec<(usize, Vec<Digraph>)> = vec![
        (
            3,
            models::named::star_unions(3, 1)
                .unwrap()
                .generators()
                .to_vec(),
        ),
        (
            3,
            models::named::symmetric_ring(3)
                .unwrap()
                .generators()
                .to_vec(),
        ),
        (
            4,
            models::named::star_unions(4, 2)
                .unwrap()
                .generators()
                .to_vec(),
        ),
        (4, vec![families::fig1_second_graph()]),
        (
            4,
            models::named::symmetric_ring(4)
                .unwrap()
                .generators()
                .to_vec(),
        ),
    ];
    for (n, gens) in zoo {
        let c = closed_above_uninterpreted_complex(&gens, 1_000_000).unwrap();
        assert!(
            is_k_connected(&c, n as isize - 2),
            "n = {n}, {} generators",
            gens.len()
        );
    }
}

/// §5's star discussion: for symmetric unions of s stars,
/// γ_dist(S) = n − s + 1, max-cov_t(S) = t, M_t(S) = n − t, and therefore
/// l = n − s − 1 so (n−s)-set agreement is impossible — while
/// (n−s+1)-set agreement is solvable: TIGHT.
#[test]
fn section_5_star_unions_all_numbers() {
    for n in 3..6usize {
        for s in 1..n {
            let model = models::named::star_unions(n, s).unwrap();
            let gens = model.generators();
            let gd = distributed_domination_number(gens).unwrap();
            assert_eq!(gd, n - s + 1, "γ_dist, n={n}, s={s}");
            for t in 1..gd {
                assert_eq!(
                    max_covering_number_with(gens, t, gd).unwrap(),
                    t,
                    "max-cov_{t}, n={n}, s={s}"
                );
                assert_eq!(
                    max_covering_coefficient_with(gens, t, gd).unwrap(),
                    n - t,
                    "M_{t}, n={n}, s={s}"
                );
            }
            let report = BoundsReport::compute(&model, 1).unwrap();
            assert_eq!(report.best_upper().unwrap().k, n - s + 1);
            if n - s >= 1 {
                assert_eq!(report.best_lower().unwrap().impossible_k, n - s);
                assert!(report.is_tight());
            }
        }
    }
}

/// Thm 5.1: on the simple model ↑G, (γ(G)−1)-set agreement is impossible
/// and γ(G)-set agreement is solvable — checked as bound consistency on a
/// family of generators.
#[test]
fn theorem_5_1_simple_tightness() {
    for g in [
        families::cycle(4).unwrap(),
        families::cycle(5).unwrap(),
        families::path(4).unwrap(),
        families::fig1_second_graph(),
    ] {
        let gamma = domination_number(&g);
        let model = ClosedAboveModel::new(vec![g.clone()]).unwrap();
        let report = BoundsReport::compute(&model, 1).unwrap();
        assert_eq!(report.best_upper().unwrap().k, gamma, "graph {g}");
        if gamma >= 2 {
            assert_eq!(
                report.best_lower().unwrap().impossible_k,
                gamma - 1,
                "graph {g}"
            );
            assert!(report.is_tight(), "graph {g}");
        }
    }
}

/// §6.1: the product of closures is strictly inside the closure of the
/// product for C6 (Lemma 6.2 gives one inclusion; the counterexample
/// rules out the other).
#[test]
fn section_6_1_product_noninvariance() {
    use kset_agreement::graphs::product::{power, product};
    use kset_agreement::graphs::random::random_superset;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let c6 = families::cycle(6).unwrap();
    let c6sq = power(&c6, 2).unwrap();
    // Lemma 6.2 (sampled): supersets multiply into the closure.
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..50 {
        let a = random_superset(&c6, &mut rng).unwrap();
        let b = random_superset(&c6, &mut rng).unwrap();
        assert!(product(&a, &b).unwrap().contains_graph(&c6sq).unwrap());
    }
    // The strictness witness is exercised in `cargo run --example
    // multi_round` (exhaustive preimage search); here we check the cheap
    // necessary condition: adding p1→p5 to either factor forces extra
    // product edges beyond C6² + (p1→p5).
    let mut target = c6sq.clone();
    target.add_edge(1, 5).unwrap();
    // Factor-2 addition (w → 5) forces (w−1 → 5) too; for the edge to come
    // from factor 2 we'd need w ∈ {1} with (0→5) ∈ target — false.
    assert!(!target.has_edge(0, 5));
    // Factor-1 addition (1 → w) forces (1 → w+1); we'd need w ∈ {5} with
    // (1→0) ∈ target — false.
    assert!(!target.has_edge(1, 0));
}

/// Thm 6.13 (+ App. G): star-union impossibility is round-independent.
#[test]
fn theorem_6_13_round_independence() {
    let model = models::named::star_unions(4, 2).unwrap();
    for r in 1..=3 {
        let report = BoundsReport::compute(&model, r).unwrap();
        assert_eq!(
            report.best_lower().unwrap().impossible_k,
            2,
            "r = {r}: n − s = 2 stays impossible"
        );
        assert_eq!(report.best_upper().unwrap().k, 3, "r = {r}");
    }
}

/// Def 5.2 discussion: γ_dist(S) ≤ γ_eq(S) (equality under the faithful
/// reading — see DESIGN.md).
#[test]
fn definition_5_2_ordering() {
    for model in [
        models::named::star_unions(4, 2).unwrap(),
        models::named::symmetric_ring(4).unwrap(),
        models::named::fig1_second_model().unwrap(),
    ] {
        let gens = model.generators();
        assert!(
            distributed_domination_number(gens).unwrap()
                <= equal_domination_number_of_set(gens).unwrap()
        );
    }
}

/// §2.1: the closed-above examples — non-empty kernel and non-split — and
/// the upward-closure property that motivates Def 2.3.
#[test]
fn section_2_1_model_examples() {
    let kernel = models::named::non_empty_kernel(3).unwrap();
    // Kernel graphs: someone broadcasts.
    for g in kernel.generators() {
        assert!((0..3).any(|c| g.out_set(c) == ProcSet::full(3)));
    }
    let nonsplit = models::named::non_split_within(3, 1u128 << 18).unwrap();
    // Every kernel graph is non-split (common in-neighbor = the center).
    for g in kernel.generators() {
        assert!(nonsplit.contains(g).unwrap());
    }
}

/// Thm 3.7 worked inequality: the covering bound beats γ_eq exactly when
/// n − cov_i(S) < γ_eq(S) − i for some i.
#[test]
fn theorem_3_7_improvement_criterion() {
    let g = families::fig1_second_graph();
    let sym = symmetric_closure(std::slice::from_ref(&g)).unwrap();
    let n = 4;
    let geq = equal_domination_number_of_set(&sym).unwrap();
    let mut improves = false;
    for i in 1..geq {
        let cov = covering_number_of_set(&sym, i).unwrap();
        if n - cov < geq - i {
            improves = true;
        }
    }
    assert!(improves, "fig1(b) is the paper's improvement example");
    // And the star model never improves.
    let star_sym = symmetric_closure(&[families::fig1_star()]).unwrap();
    let geq_star = equal_domination_number_of_set(&star_sym).unwrap();
    for i in 1..geq_star {
        let cov = covering_number_of_set(&star_sym, i).unwrap();
        assert!(n - cov >= geq_star - i);
    }
}

/// Cross-layer: γ_eq of a single graph equals γ_dist of its singleton and
/// covering number of the closure is attained at the generator (closure
/// monotonicity).
#[test]
fn cross_layer_sanity() {
    let g = families::cycle(5).unwrap();
    assert_eq!(
        distributed_domination_number(std::slice::from_ref(&g)).unwrap(),
        equal_domination_number(&g)
    );
    // Any superset has covering numbers at least the generator's.
    use kset_agreement::graphs::random::random_superset;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..20 {
        let h = random_superset(&g, &mut rng).unwrap();
        for i in 1..=5 {
            assert!(covering_number(&h, i).unwrap() >= covering_number(&g, i).unwrap());
        }
    }
}
