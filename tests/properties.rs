//! Cross-crate property tests: random closed-above models must keep the
//! whole stack consistent — bounds ordered, reports sound, executions
//! within bounds, topology agreeing with theory.

use kset_agreement::prelude::*;
use kset_agreement::runtime::execution::execute_schedule;
use proptest::prelude::*;

/// Strategy: a random closed-above model on `n ∈ [3, 5]` processes with
/// 1–3 random generators.
fn random_model() -> impl Strategy<Value = ClosedAboveModel> {
    (3usize..=5, 1usize..=3).prop_flat_map(|(n, gens)| {
        prop::collection::vec(prop::collection::vec(any::<bool>(), n * n), gens).prop_map(
            move |graphs| {
                let gs: Vec<Digraph> = graphs
                    .into_iter()
                    .map(|edges| {
                        let mut g = Digraph::empty(n).expect("valid n");
                        for u in 0..n {
                            for v in 0..n {
                                if u != v && edges[u * n + v] {
                                    g.add_edge(u, v).expect("in range");
                                }
                            }
                        }
                        g
                    })
                    .collect();
                ClosedAboveModel::new(gs).expect("non-empty same-n generators")
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn reports_are_consistent(model in random_model(), r in 1usize..=2) {
        let report = BoundsReport::compute(&model, r).expect("computable");
        prop_assert!(report.is_consistent(), "{report}");
        // Upper bounds never exceed n (γ_eq ≤ n).
        prop_assert!(report.best_upper().unwrap().k <= model.n());
    }

    #[test]
    fn upper_bounds_weakly_improve_with_rounds(model in random_model()) {
        let k1 = kset_agreement::core::bounds::upper::best_upper_bound(&model, 1)
            .expect("computable").k;
        let k2 = kset_agreement::core::bounds::upper::best_upper_bound(&model, 2)
            .expect("computable").k;
        prop_assert!(k2 <= k1, "k1 = {k1}, k2 = {k2}");
    }

    #[test]
    fn lower_bounds_stay_below_uppers_at_every_round(model in random_model()) {
        // Note: the Thm 6.11 *formula* is not monotone in r on arbitrary
        // models (densifying products can eliminate large non-dominating
        // audiences, shrinking max-cov and raising M_t), so we do not
        // assert decay. What must always hold is consistency against the
        // upper bounds at the same round count.
        for r in 1..=2 {
            let lower = kset_agreement::core::bounds::lower::best_lower_bound(&model, r)
                .expect("computable")
                .map(|b| b.impossible_k)
                .unwrap_or(0);
            let upper = kset_agreement::core::bounds::upper::best_upper_bound(&model, r)
                .expect("computable")
                .k;
            prop_assert!(lower < upper, "r = {r}: {lower} ≥ {upper}");
        }
    }

    #[test]
    fn executions_respect_gamma_eq(
        model in random_model(),
        inputs_seed in 0u32..1000,
    ) {
        let n = model.n();
        let geq = kset_agreement::graphs::equal_domination::equal_domination_number_of_set(
            model.generators()).expect("non-empty");
        // A deterministic pseudo-random input assignment.
        let inputs: Vec<Value> =
            (0..n).map(|p| ((inputs_seed as usize + p * 7) % n) as Value).collect();
        for schedule in
            kset_agreement::models::adversary::generator_schedules(&model, 1).take(8)
        {
            let trace = execute_schedule(&MinOfAll::new(), &schedule, &inputs)
                .expect("runs");
            prop_assert!(trace.distinct_decisions() <= geq);
            // Validity always.
            for d in &trace.decisions {
                prop_assert!(trace.inputs.contains(d));
            }
        }
    }

    #[test]
    fn min_decisions_are_monotone_in_view(model in random_model()) {
        // Flooding more (adding a round of clique) can only reduce the
        // decision values and their count.
        let n = model.n();
        let inputs: Vec<Value> = (0..n as Value).rev().collect();
        let gens = model.generators();
        let schedule1 = vec![gens[0].clone()];
        let schedule2 = vec![gens[0].clone(), Digraph::complete(n).expect("valid")];
        let t1 = execute_schedule(&MinOfAll::new(), &schedule1, &inputs).expect("runs");
        let t2 = execute_schedule(&MinOfAll::new(), &schedule2, &inputs).expect("runs");
        for p in 0..n {
            prop_assert!(t2.decisions[p] <= t1.decisions[p]);
        }
        prop_assert!(t2.distinct_decisions() <= t1.distinct_decisions());
    }

    #[test]
    fn sampled_graphs_are_members(model in random_model(), seed in 0u64..100) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..5 {
            let g = model.sample(&mut rng);
            prop_assert!(model.contains(&g).expect("same n"));
        }
    }
}
