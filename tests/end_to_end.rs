//! End-to-end integration: theory (bounds), topology (protocol-complex
//! connectivity) and runtime (executions) must tell one consistent story.

use kset_agreement::core::verify::verify_protocol_connectivity;
use kset_agreement::prelude::*;
use kset_agreement::runtime::checker::{check_exhaustive, check_with_supersets};
use kset_agreement::runtime::execution::execute_schedule;
use kset_agreement::runtime::monte_carlo::monte_carlo;

fn zoo() -> Vec<(&'static str, ClosedAboveModel)> {
    vec![
        ("stars n=3 s=1", models::named::star_unions(3, 1).unwrap()),
        ("stars n=4 s=1", models::named::star_unions(4, 1).unwrap()),
        ("stars n=4 s=2", models::named::star_unions(4, 2).unwrap()),
        ("stars n=4 s=3", models::named::star_unions(4, 3).unwrap()),
        ("ring n=3", models::named::symmetric_ring(3).unwrap()),
        ("ring n=4", models::named::symmetric_ring(4).unwrap()),
        ("simple ring n=4", models::named::simple_ring(4).unwrap()),
        ("simple ring n=5", models::named::simple_ring(5).unwrap()),
        ("fig1 star", models::named::fig1_star_model().unwrap()),
        ("fig1 second", models::named::fig1_second_model().unwrap()),
        (
            "tournament n=3",
            models::named::tournament_within(3, 1u128 << 10).unwrap(),
        ),
    ]
}

/// The flood-and-min algorithm stays within the min-realizable upper bound
/// on EVERY generator schedule and input assignment, for 1 and 2 rounds.
#[test]
fn algorithm_within_upper_bounds_everywhere() {
    for (name, model) in zoo() {
        for rounds in 1..=2 {
            let report = BoundsReport::compute(&model, rounds).unwrap();
            let bound = report
                .uppers
                .iter()
                .filter(|u| u.theorem != "Thm 3.2" && u.theorem != "Thm 6.3")
                .map(|u| u.k)
                .min()
                .unwrap();
            let budget = 50_000_000u128;
            match check_exhaustive(&MinOfAll::new(), &model, 3, rounds, budget) {
                Ok(chk) => {
                    assert!(chk.validity_ok, "{name} r={rounds}");
                    assert!(
                        chk.worst_distinct <= bound,
                        "{name} r={rounds}: {} > {}",
                        chk.worst_distinct,
                        bound
                    );
                }
                Err(kset_agreement::runtime::RuntimeError::TooLarge { .. }) => {
                    // Fall back to Monte-Carlo for the big schedules.
                    let mc = monte_carlo(&MinOfAll::new(), &model, 3, rounds, 500, 1).unwrap();
                    assert!(mc.validity_ok, "{name} r={rounds}");
                    assert!(mc.worst_distinct <= bound, "{name} r={rounds}");
                }
                Err(e) => panic!("{name} r={rounds}: {e}"),
            }
        }
    }
}

/// Where the report says TIGHT, the adversary actually achieves the
/// impossible-plus-one level against flood-and-min: the worst execution
/// hits exactly `best_upper` distinct values.
#[test]
fn tight_models_are_empirically_tight() {
    for (name, model) in zoo() {
        let report = BoundsReport::compute(&model, 1).unwrap();
        if !report.is_tight() || model.is_simple() {
            continue;
        }
        let up = report.best_upper().unwrap().k;
        let n = model.n();
        if let Ok(chk) = check_exhaustive(&MinOfAll::new(), &model, n, 1, 50_000_000) {
            assert_eq!(
                chk.worst_distinct, up,
                "{name}: tight bound should be achieved"
            );
        }
    }
}

/// Thm 5.4's engine measured: for every small general model, the one-round
/// protocol complex's homological connectivity is at least the predicted
/// `l`.
#[test]
fn protocol_connectivity_matches_predictions() {
    for (name, model) in [
        ("stars n=3 s=1", models::named::star_unions(3, 1).unwrap()),
        ("stars n=3 s=2", models::named::star_unions(3, 2).unwrap()),
        ("ring n=3", models::named::symmetric_ring(3).unwrap()),
        (
            "tournament n=3",
            models::named::tournament_within(3, 1u128 << 10).unwrap(),
        ),
    ] {
        let rep = verify_protocol_connectivity(&model, 1, 500_000).unwrap();
        assert!(
            rep.is_consistent(),
            "{name}: predicted {} > measured {}",
            rep.predicted_l,
            rep.measured_connectivity
        );
    }
}

/// The dominating-set algorithm (Thm 3.2) achieves γ(G) on simple models,
/// including against sampled supersets, and γ(G) is exactly tight
/// (Thm 5.1): flooding cannot do better than γ_eq but the dominating set
/// reaches γ.
#[test]
fn dominating_set_algorithm_is_tight_on_simple_models() {
    for g in [
        kset_agreement::graphs::families::cycle(4).unwrap(),
        kset_agreement::graphs::families::cycle(5).unwrap(),
        kset_agreement::graphs::families::fig1_second_graph(),
    ] {
        let gamma = kset_agreement::graphs::domination::domination_number(&g);
        let model = ClosedAboveModel::new(vec![g.clone()]).unwrap();
        let alg = MinOfDominatingSet::for_graph(&g);
        let chk = check_with_supersets(&alg, &model, gamma + 1, 1, 10, 0xABCD, 50_000_000).unwrap();
        assert!(chk.validity_ok);
        assert_eq!(chk.worst_distinct, gamma, "graph {g}");
    }
}

/// Round monotonicity, end to end: more rounds never worsen the observed
/// worst case, and the bounds track it.
#[test]
fn rounds_help_monotonically() {
    let model = models::named::symmetric_ring(4).unwrap();
    let mut prev = usize::MAX;
    for rounds in 1..=3 {
        let chk = check_exhaustive(&MinOfAll::new(), &model, 2, rounds, 50_000_000).unwrap();
        assert!(chk.worst_distinct <= prev, "r = {rounds}");
        prev = chk.worst_distinct;
    }
    assert_eq!(prev, 1, "three rounds of 4-rings reach consensus");
}

/// The task checker agrees with the trace statistics.
#[test]
fn task_checker_and_traces_agree() {
    let model = models::named::star_unions(4, 2).unwrap();
    let task = KSetTask::new(4, 3).unwrap();
    for schedule in kset_agreement::models::adversary::generator_schedules(&model, 1).take(6) {
        let trace = execute_schedule(&MinOfAll::new(), &schedule, &[3, 1, 2, 0]).unwrap();
        assert!(task.check(&trace.inputs, &trace.decisions).is_ok());
        assert!(trace.distinct_decisions() <= 3);
    }
}

/// Sanity across layers: a witness found by the checker replays to the
/// same decisions through the execution engine, and its distinct count
/// matches the task's counter.
#[test]
fn witnesses_replay_deterministically() {
    let model = models::named::fig1_second_model().unwrap();
    let chk = check_exhaustive(&MinOfAll::new(), &model, 4, 1, 50_000_000).unwrap();
    let w = chk.witness.expect("non-empty exploration");
    let again = execute_schedule(&MinOfAll::new(), &w.graphs, &w.inputs).unwrap();
    assert_eq!(again.decisions, w.decisions);
    let task = KSetTask::new(4, 4).unwrap();
    assert_eq!(
        task.distinct_decisions(&w.decisions),
        w.distinct_decisions()
    );
}
