//! # kset-agreement
//!
//! A comprehensive Rust reproduction of *"K-set agreement bounds in
//! round-based models through combinatorial topology"* (Adam Shimi &
//! Armando Castañeda, PODC 2020, arXiv:2003.02869).
//!
//! This umbrella crate re-exports the layers of the system:
//!
//! | Layer | Crate | What it is |
//! |---|---|---|
//! | exec | `exec` | the work-stealing execution engine behind the `parallel` feature |
//! | graphs | [`graphs`] | communication graphs + the paper's combinatorial numbers |
//! | topology | [`topology`] | simplicial complexes, pseudospheres, homology, protocol complexes |
//! | models | [`models`] | oblivious / closed-above models, the model zoo, adversaries |
//! | core | [`core`] | every theorem of the paper as an executable bound + the algorithms |
//! | cert | [`cert`] | machine-checkable certificates + standalone checkers for every verdict |
//! | runtime | [`runtime`] | round-based execution, exhaustive checking, Monte-Carlo |
//!
//! ## Quickstart
//!
//! ```
//! use kset_agreement::prelude::*;
//!
//! // The symmetric union-of-2-stars model on 5 processes (Thm 6.13),
//! // looked up in the builtin registry by its canonical spec name
//! // (`models::named::star_unions(5, 2)` builds the identical model):
//! let model = models::registry::builtin()
//!     .resolve_closed_above("stars{n=5,s=2}", 1_000_000u128)?;
//! let report = BoundsReport::compute(&model, 1)?;
//! assert_eq!(report.best_upper().unwrap().k, 4);          // solvable
//! assert_eq!(report.best_lower().unwrap().impossible_k, 3); // impossible
//! assert!(report.is_tight());
//!
//! // …and the flood-and-min algorithm actually achieves it:
//! let check = runtime::checker::check_exhaustive(
//!     &MinOfAll::new(), &model, 5, 1, 100_000_000)?;
//! assert_eq!(check.worst_distinct, 4);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use ksa_cert as cert;
pub use ksa_core as core;
#[cfg(feature = "parallel")]
pub use ksa_exec as exec;
pub use ksa_graphs as graphs;
pub use ksa_models as models;
pub use ksa_runtime as runtime;
pub use ksa_topology as topology;

/// The most common imports, for examples and downstream quickstarts.
pub mod prelude {
    pub use crate::{cert, core, graphs, models, runtime, topology};
    pub use ksa_core::algorithms::{MinOfAll, MinOfDominatingSet, ObliviousAlgorithm};
    pub use ksa_core::bounds::report::BoundsReport;
    pub use ksa_core::task::{KSetTask, Value};
    pub use ksa_graphs::{Digraph, ProcSet};
    pub use ksa_models::{ClosedAboveModel, ObliviousModel};
}
