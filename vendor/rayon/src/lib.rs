//! A minimal, dependency-free, in-workspace stand-in for [`rayon`]'s
//! parallel-iterator API, backed by `std::thread::scope`.
//!
//! The build environment for this repository is fully offline, so
//! crates.io dependencies cannot be fetched. This shim implements the
//! subset of the `rayon` surface the workspace's hot paths use —
//! `par_iter` / `into_par_iter` with order-preserving `map`, `collect`,
//! reductions and early-exit searches — with *real* data parallelism:
//! items are split into contiguous chunks, one per available core, and
//! processed on scoped OS threads. Swapping the path dependency for the
//! crates.io crate is a one-line `Cargo.toml` change.
//!
//! Semantics guaranteed by this shim (and relied on by the callers):
//!
//! * `map`/`collect` preserve input order, exactly like rayon's indexed
//!   parallel iterators;
//! * reductions (`reduce`, `min`, `sum`, …) combine chunk results in
//!   chunk order, so associative+commutative folds are deterministic;
//! * `any`/`find_any` stop scheduling new work once a match is found
//!   (cooperative early exit through an atomic flag).
//!
//! [`rayon`]: https://crates.io/crates/rayon

use std::sync::atomic::{AtomicBool, Ordering};

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

pub mod iter {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter, ParallelIterator};
}

/// The number of worker threads used for a workload of `len` items.
fn thread_count(len: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    cores.min(len).max(1)
}

/// Splits `items` into `parts` contiguous chunks, preserving order.
fn split<T>(mut items: Vec<T>, parts: usize) -> Vec<Vec<T>> {
    let len = items.len();
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    // Split from the back so each split_off is O(chunk).
    let mut sizes: Vec<usize> = (0..parts).map(|i| base + usize::from(i < extra)).collect();
    while let Some(size) = sizes.pop() {
        let tail = items.split_off(items.len() - size);
        out.push(tail);
    }
    out.reverse();
    out
}

/// Runs `f` over each chunk of `items` on scoped threads; returns the
/// per-chunk results in chunk order.
fn run_chunks<T, O, F>(items: Vec<T>, f: F) -> Vec<O>
where
    T: Send,
    O: Send,
    F: Fn(Vec<T>) -> O + Sync,
{
    let parts = thread_count(items.len());
    if parts <= 1 {
        return if items.is_empty() {
            Vec::new()
        } else {
            vec![f(items)]
        };
    }
    let chunks = split(items, parts);
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(|| f(chunk)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    })
}

/// Conversion into a parallel iterator (owning).
pub trait IntoParallelIterator {
    /// The item type.
    type Item: Send;

    /// Materializes the source into a [`ParIter`].
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

/// Conversion into a borrowing parallel iterator.
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed item type.
    type Item: Send + 'a;

    /// A parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// A materialized parallel iterator: the items to process, in order.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// The consuming operations. A separate trait (rather than inherent
/// methods) so call sites read identically to real rayon's
/// `ParallelIterator`.
pub trait ParallelIterator: Sized {
    /// The item type.
    type Item: Send;

    /// Consumes `self` into its ordered item vector.
    fn into_items(self) -> Vec<Self::Item>;

    /// Order-preserving parallel map.
    fn map<O, F>(self, f: F) -> ParIter<O>
    where
        O: Send,
        F: Fn(Self::Item) -> O + Sync,
    {
        let results = run_chunks(self.into_items(), |chunk| {
            chunk.into_iter().map(&f).collect::<Vec<O>>()
        });
        ParIter {
            items: results.into_iter().flatten().collect(),
        }
    }

    /// Pairs each item with its index (indexed iterator semantics).
    fn enumerate(self) -> ParIter<(usize, Self::Item)> {
        ParIter {
            items: self.into_items().into_iter().enumerate().collect(),
        }
    }

    /// Order-preserving parallel filter.
    fn filter<F>(self, f: F) -> ParIter<Self::Item>
    where
        F: Fn(&Self::Item) -> bool + Sync,
    {
        let results = run_chunks(self.into_items(), |chunk| {
            chunk.into_iter().filter(&f).collect::<Vec<_>>()
        });
        ParIter {
            items: results.into_iter().flatten().collect(),
        }
    }

    /// Order-preserving parallel filter-map.
    fn filter_map<O, F>(self, f: F) -> ParIter<O>
    where
        O: Send,
        F: Fn(Self::Item) -> Option<O> + Sync,
    {
        let results = run_chunks(self.into_items(), |chunk| {
            chunk.into_iter().filter_map(&f).collect::<Vec<O>>()
        });
        ParIter {
            items: results.into_iter().flatten().collect(),
        }
    }

    /// Parallel for-each (no ordering guarantees between chunks).
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        run_chunks(self.into_items(), |chunk| chunk.into_iter().for_each(&f));
    }

    /// Collects into any `FromIterator` target, preserving order.
    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        self.into_items().into_iter().collect()
    }

    /// Parallel reduction. `identity` seeds each chunk; `op` must be
    /// associative for a deterministic result (chunk results are folded
    /// in chunk order).
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync,
    {
        let partials = run_chunks(self.into_items(), |chunk| {
            chunk.into_iter().fold(identity(), &op)
        });
        partials.into_iter().fold(identity(), &op)
    }

    /// Minimum item, `None` when empty.
    fn min(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        let partials = run_chunks(self.into_items(), |chunk| chunk.into_iter().min());
        partials.into_iter().flatten().min()
    }

    /// Maximum item, `None` when empty.
    fn max(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        let partials = run_chunks(self.into_items(), |chunk| chunk.into_iter().max());
        partials.into_iter().flatten().max()
    }

    /// Minimum by key; on ties the earliest item wins (deterministic).
    fn min_by_key<K, F>(self, f: F) -> Option<Self::Item>
    where
        K: Ord + Send,
        F: Fn(&Self::Item) -> K + Sync,
    {
        let partials = run_chunks(self.into_items(), |chunk| {
            chunk
                .into_iter()
                .map(|item| (f(&item), item))
                .min_by(|a, b| a.0.cmp(&b.0))
        });
        partials
            .into_iter()
            .flatten()
            .min_by(|a, b| a.0.cmp(&b.0))
            .map(|(_, item)| item)
    }

    /// Parallel sum.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + std::iter::Sum<S> + Send,
    {
        let partials = run_chunks(self.into_items(), |chunk| chunk.into_iter().sum::<S>());
        partials.into_iter().sum()
    }

    /// Number of items.
    fn count(self) -> usize {
        self.into_items().len()
    }

    /// Whether any item satisfies `f`; stops scheduling work after the
    /// first match.
    fn any<F>(self, f: F) -> bool
    where
        F: Fn(Self::Item) -> bool + Sync,
    {
        let found = AtomicBool::new(false);
        run_chunks(self.into_items(), |chunk| {
            for item in chunk {
                if found.load(Ordering::Relaxed) {
                    return;
                }
                if f(item) {
                    found.store(true, Ordering::Relaxed);
                    return;
                }
            }
        });
        found.load(Ordering::Relaxed)
    }

    /// Whether every item satisfies `f` (early exit on a witness).
    fn all<F>(self, f: F) -> bool
    where
        F: Fn(&Self::Item) -> bool + Sync,
    {
        !self.any(|item| !f(&item))
    }

    /// Some item matching the predicate, if one exists. Unlike real
    /// rayon, deterministically returns a match from the earliest
    /// *chunk* that found one.
    fn find_any<F>(self, f: F) -> Option<Self::Item>
    where
        F: Fn(&Self::Item) -> bool + Sync,
    {
        let found = AtomicBool::new(false);
        let partials = run_chunks(self.into_items(), |chunk| {
            for item in chunk {
                if found.load(Ordering::Relaxed) {
                    return None;
                }
                if f(&item) {
                    found.store(true, Ordering::Relaxed);
                    return Some(item);
                }
            }
            None
        });
        partials.into_iter().flatten().next()
    }
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;

    fn into_items(self) -> Vec<T> {
        self.items
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<usize> = (0..10_000).collect();
        let doubled: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_inputs() {
        let v: Vec<usize> = Vec::new();
        assert_eq!(
            v.par_iter().map(|&x| x).collect::<Vec<_>>(),
            Vec::<usize>::new()
        );
        assert_eq!(v.into_par_iter().min(), None);
    }

    #[test]
    fn reductions() {
        let v: Vec<u64> = (1..=1000).collect();
        assert_eq!(v.par_iter().map(|&x| x).sum::<u64>(), 500_500);
        assert_eq!(v.par_iter().map(|&x| x).min(), Some(1));
        assert_eq!(v.par_iter().map(|&x| x).max(), Some(1000));
        assert_eq!(v.par_iter().map(|&x| x).count(), 1000);
        assert_eq!(
            (0..100usize).into_par_iter().reduce(|| 0, |a, b| a + b),
            4950
        );
    }

    #[test]
    fn searches() {
        let v: Vec<usize> = (0..10_000).collect();
        assert!(v.par_iter().any(|&x| x == 9_999));
        assert!(!v.par_iter().any(|&x| x == 10_000));
        assert!(v.par_iter().all(|&x| *x < 10_000));
        assert_eq!(
            v.par_iter().find_any(|&&x| x % 7_777 == 7_776),
            Some(&7_776)
        );
    }

    #[test]
    fn min_by_key_breaks_ties_deterministically() {
        let v = vec![(3, 'a'), (1, 'b'), (1, 'c'), (2, 'd')];
        assert_eq!(v.into_par_iter().min_by_key(|p| p.0), Some((1, 'b')));
    }

    #[test]
    fn filters() {
        let v: Vec<usize> = (0..1000).collect();
        let evens: Vec<usize> = v
            .par_iter()
            .filter_map(|&x| (x % 2 == 0).then_some(x))
            .collect();
        assert_eq!(evens.len(), 500);
        assert!(evens.windows(2).all(|w| w[0] < w[1]));
    }
}
