//! A minimal, dependency-free, in-workspace stand-in for the
//! [`criterion`] benchmarking crate, providing the API surface this
//! workspace's benches use.
//!
//! The build environment for this repository is fully offline, so
//! crates.io dependencies cannot be fetched. The bench sources stay
//! byte-compatible with real criterion (`criterion_group!`,
//! `criterion_main!`, `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter`, `sample_size`),
//! so swapping the path dependency for the crates.io crate is a
//! one-line `Cargo.toml` change.
//!
//! Measurement is intentionally simple: per benchmark, a short warm-up
//! followed by `sample_size` timed samples; the median, minimum and
//! maximum per-iteration times are printed. No plots, no statistics
//! beyond that — the point is that `cargo bench` compiles, runs and
//! reports something honest.
//!
//! [`criterion`]: https://crates.io/crates/criterion

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self.sample_size, &mut f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (report separator).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name + parameter.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// An id for `function` at `parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    /// An id distinguished only by `parameter`.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Hands the routine under measurement to the timing loop.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, recording `sample_size` samples after warm-up.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up + calibration: find how many iterations fit ~2 ms.
        let mut iters_per_sample = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 4;
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            self.samples.push(start.elapsed() / iters_per_sample as u32);
        }
    }
}

fn run_one(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    let started = Instant::now();
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<56} (no samples)");
        return;
    }
    bencher.samples.sort_unstable();
    let median = bencher.samples[bencher.samples.len() / 2];
    let min = bencher.samples[0];
    let max = *bencher.samples.last().expect("non-empty");
    println!(
        "{label:<56} median {median:>12?}  [min {min:?}, max {max:?}]  (total {:?})",
        started.elapsed()
    );
}

/// Collects benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// The `main` for a bench binary built from [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_machinery_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &x| b.iter(|| x * x));
        group.finish();
        c.bench_function("top-level", |b| b.iter(|| black_box(2) * 3));
    }
}
