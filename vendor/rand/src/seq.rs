//! Sequence helpers (`shuffle`, `choose`).

use crate::Rng;

/// Random operations on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Fisher–Yates shuffle, in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` on an empty slice.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j: usize = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(v, (0..20).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn choose_bounds() {
        let mut rng = StdRng::seed_from_u64(10);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let v = [1, 2, 3];
        for _ in 0..50 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
    }
}
