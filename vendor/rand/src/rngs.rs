//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The standard seeded generator: xoshiro256++ with SplitMix64 seeding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion of the seed into the full 256-bit state,
        // as recommended by the xoshiro authors.
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}
