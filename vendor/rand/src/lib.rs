//! A minimal, dependency-free, in-workspace stand-in for the [`rand`]
//! crate, providing exactly the API surface this workspace uses.
//!
//! The build environment for this repository is fully offline, so
//! crates.io dependencies cannot be fetched; this shim keeps the source
//! compatible with the real `rand` 0.9 API (`random_bool`,
//! `random_range`, `StdRng`, `SeedableRng::seed_from_u64`,
//! `seq::SliceRandom::shuffle`) so that swapping the path dependency for
//! the crates.io crate is a one-line `Cargo.toml` change.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 — deterministic, fast, and statistically solid for the
//! seeded-workload purposes of this repository (it is *not* a
//! cryptographic RNG, and neither is the real `StdRng` contract relied
//! on anywhere here).
//!
//! [`rand`]: https://crates.io/crates/rand

pub mod rngs;
pub mod seq;

/// The core of a random number generator: object-safe raw output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p = {p} out of [0, 1]");
        // 53 high-quality mantissa bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// A uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Debiased multiply-shift bounded sampling (Lemire).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(bound as u128);
        let lo = m as u64;
        if lo >= bound || lo >= (u64::MAX - bound + 1) % bound {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (start as i128 + bounded_u64(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn determinism() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: usize = rng.random_range(0..=5);
            assert!(y <= 5);
            let f: f64 = rng.random_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..64 {
            assert!(!rng.random_bool(0.0));
            assert!(rng.random_bool(1.0));
        }
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| rng.random_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }
}
