//! The [`Strategy`] trait, primitive strategies and combinators.

use crate::TestRng;

/// A generator of values for property tests (sampling-only — this shim
/// does not shrink).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value and samples it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Perturbs generated values with direct access to a generator.
    fn prop_perturb<O, F>(self, f: F) -> Perturb<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value, TestRng) -> O,
    {
        Perturb { inner: self, f }
    }
}

// Strategies are often passed by reference inside combinators.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_perturb`].
pub struct Perturb<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Perturb<S, F>
where
    S: Strategy,
    F: Fn(S::Value, TestRng) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        let value = self.inner.sample(rng);
        (self.f)(value, rng.split())
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` over its whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (start as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
}
