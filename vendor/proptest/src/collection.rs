//! Collection strategies: `vec`, `btree_map`, `btree_set`.

use crate::strategy::Strategy;
use crate::TestRng;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::{Range, RangeInclusive};

/// An admissible size (or size range) for a generated collection.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Inclusive.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        if self.min == self.max {
            self.min
        } else {
            self.min + rng.below((self.max - self.min + 1) as u64) as usize
        }
    }
}

/// A `Vec` of values from `element`, with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// A `BTreeMap` with keys from `key`, values from `value` and a size
/// drawn from `size`. If the key space is too small to reach the drawn
/// size, the map saturates at the distinct keys found (mirroring real
/// proptest's behavior of giving up on duplicates).
pub fn btree_map<K: Strategy, V: Strategy>(
    key: K,
    value: V,
    size: impl Into<SizeRange>,
) -> BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

/// See [`btree_map`].
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn sample(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let target = self.size.sample(rng);
        let mut map = BTreeMap::new();
        let mut attempts = 0usize;
        while map.len() < target && attempts < 64 * (target + 1) {
            attempts += 1;
            map.insert(self.key.sample(rng), self.value.sample(rng));
        }
        map
    }
}

/// A `BTreeSet` of values from `element` with a size drawn from `size`
/// (saturating like [`btree_map`] when the element space is small).
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.sample(rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0usize;
        while set.len() < target && attempts < 64 * (target + 1) {
            attempts += 1;
            set.insert(self.element.sample(rng));
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn vec_respects_sizes() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..100 {
            let v = vec(0usize..10, 2..5).sample(&mut rng);
            assert!((2..5).contains(&v.len()));
            let fixed = vec(any::<bool>(), 7usize).sample(&mut rng);
            assert_eq!(fixed.len(), 7);
        }
    }

    #[test]
    fn sets_and_maps_reach_feasible_targets() {
        let mut rng = TestRng::from_seed(2);
        for _ in 0..100 {
            let s = btree_set(0u8..4, 1..3).sample(&mut rng);
            assert!((1..3).contains(&s.len()));
            let m = btree_map(0usize..5, 0u8..3, 1..=4).sample(&mut rng);
            assert!((1..=4).contains(&m.len()));
        }
    }
}
