//! A minimal, dependency-free, in-workspace stand-in for the
//! [`proptest`] property-testing crate, providing the API surface this
//! workspace's property suites use.
//!
//! The build environment for this repository is fully offline, so
//! crates.io dependencies cannot be fetched. This shim keeps the test
//! sources byte-compatible with real proptest (`proptest!`,
//! `prop_assert*`, `Strategy` with `prop_map` / `prop_flat_map` /
//! `prop_perturb`, `any`, `Just`, `prop::collection::{vec, btree_map,
//! btree_set}`, `ProptestConfig::with_cases`) so that swapping the path
//! dependency for the crates.io crate is a one-line `Cargo.toml`
//! change.
//!
//! Differences from real proptest, by design:
//!
//! * **no shrinking** — a failing case reports its values (via the
//!   panic message) but is not minimized;
//! * **deterministic seeding** — cases derive from a fixed seed and the
//!   test name, so failures reproduce across runs;
//! * strategies are *samplers*: `sample(&self, &mut TestRng)`.
//!
//! [`proptest`]: https://crates.io/crates/proptest

pub mod collection;
pub mod strategy;

pub use strategy::{Just, Strategy};

/// Re-exports mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        TestCaseError, TestRng,
    };
    // Real proptest's prelude re-exports the crate under the name
    // `prop`, which is how `prop::collection::vec(..)` resolves.
    pub use crate as prop;
}

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum rejected cases (`prop_assume!`) before giving up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!`; try another.
    Reject,
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// The deterministic generator handed to strategies (xoshiro256++
/// seeded via SplitMix64 — matching the workspace's `rand` shim).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// A generator derived deterministically from a textual seed (the
    /// test name) — failures reproduce run over run.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name, then SplitMix64 state expansion.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self::from_seed(h)
    }

    /// A generator from a numeric seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A fresh generator split off this one (for per-case isolation).
    pub fn split(&mut self) -> TestRng {
        TestRng::from_seed(self.next_u64())
    }

    /// A uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift; bias is irrelevant for test-case generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// A uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The runner behind the [`proptest!`] macro; not intended to be called
/// directly.
pub fn run_cases(
    name: &str,
    config: &ProptestConfig,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let mut runner = TestRng::deterministic(name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < config.cases {
        let mut rng = runner.split();
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "{name}: too many prop_assume! rejections \
                         ({rejected}) after {passed} passing cases"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: property failed after {passed} passing cases: {msg}")
            }
        }
    }
}

/// Defines property tests: each `fn name(binding in strategy, …) { … }`
/// becomes a `#[test]` that samples the strategies `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with ($cfg) $($rest)*);
    };
    (@with ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(stringify!($name), &config, |rng| {
                    $(let $arg = $crate::Strategy::sample(&($strat), rng);)*
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` that fails the current case instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}:{}): {}",
                stringify!($cond), file!(), line!(), format!($($fmt)*)
            )));
        }
    };
}

/// `assert_eq!` in [`prop_assert!`] form.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{} == {}: {:?} vs {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{:?} vs {:?}: {}",
            l, r, format!($($fmt)*)
        );
    }};
}

/// `assert_ne!` in [`prop_assert!`] form.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "{} != {}: both {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current case (resampled, not counted as a pass).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}
